// Property tests for the fault model: schedule determinism, the
// zero-perturbation guarantee of a disabled injector, and the timeout /
// retry / dedup edges of the fault-aware receive path.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <tuple>
#include <vector>

#include "core/block_cyclic.hpp"
#include "dist/dist_factorization.hpp"
#include "dist/dist_solve.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "vmpi/vmpi.hpp"

namespace anyblock::fault {
namespace {

TEST(FaultPlan, DefaultConstructedIsFullyDisabled) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.message_faults());
  EXPECT_FALSE(plan.enabled());
  EXPECT_NO_THROW(plan.validate());
  // A disabled plan behind an injector must decide "deliver" for everything.
  const FaultInjector injector(plan);
  EXPECT_FALSE(injector.message_faults());
  const Fate fate = injector.fate_of(0, 1, 7, 0, 0);
  EXPECT_FALSE(fate.dropped);
  EXPECT_FALSE(fate.duplicated);
  EXPECT_EQ(fate.delay_seconds, 0.0);
}

TEST(FaultPlan, ValidateRejectsOutOfRangeValues) {
  const auto expect_invalid = [](auto mutate) {
    FaultPlan plan;
    mutate(plan);
    EXPECT_THROW(plan.validate(), std::invalid_argument);
  };
  expect_invalid([](FaultPlan& p) { p.drop = -0.1; });
  expect_invalid([](FaultPlan& p) { p.drop = 1.5; });
  expect_invalid([](FaultPlan& p) { p.drop = 0.6; p.duplicate = 0.6; });
  expect_invalid([](FaultPlan& p) { p.delay = 0.1; p.delay_ms = -1.0; });
  expect_invalid([](FaultPlan& p) { p.recv_timeout_ms = 0.0; });
  expect_invalid([](FaultPlan& p) { p.max_retries = -1; });
  expect_invalid([](FaultPlan& p) { p.link_jitter = 1.0; });
  expect_invalid([](FaultPlan& p) { p.slow_node_fraction = 0.5;
                                    p.slow_node_speed = 0.0; });
  expect_invalid([](FaultPlan& p) {
    p.stalls.push_back({/*rank=*/-1, 0, 0, 1.0});
  });
  expect_invalid([](FaultPlan& p) {
    p.stalls.push_back({/*rank=*/0, /*first_seq=*/5, /*last_seq=*/2, 1.0});
  });
}

TEST(FaultPlan, SameSeedProducesIdenticalSchedule) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop = 0.2;
  plan.duplicate = 0.2;
  plan.delay = 0.2;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  plan.seed = 1235;
  const FaultInjector other(plan);
  int diverged = 0;
  for (int source = 0; source < 3; ++source)
    for (int dest = 0; dest < 3; ++dest)
      for (std::int64_t tag = 0; tag < 4; ++tag)
        for (std::uint64_t seq = 0; seq < 8; ++seq)
          for (int attempt = 0; attempt < 2; ++attempt) {
            const Fate fa = a.fate_of(source, dest, tag, seq, attempt);
            const Fate fb = b.fate_of(source, dest, tag, seq, attempt);
            EXPECT_EQ(fa.dropped, fb.dropped);
            EXPECT_EQ(fa.duplicated, fb.duplicated);
            EXPECT_EQ(fa.delay_seconds, fb.delay_seconds);
            const Fate fo = other.fate_of(source, dest, tag, seq, attempt);
            diverged += fo.dropped != fa.dropped ||
                        fo.duplicated != fa.duplicated;
          }
  // A different seed must yield a genuinely different schedule.
  EXPECT_GT(diverged, 0);
}

TEST(FaultPlan, StallWindowAddsDelayOnlyInsideTheWindow) {
  FaultPlan plan;
  plan.stalls.push_back({/*rank=*/0, /*first_seq=*/2, /*last_seq=*/4,
                         /*extra_delay_ms=*/50.0});
  const FaultInjector injector(plan);
  EXPECT_TRUE(injector.message_faults());
  EXPECT_GE(injector.fate_of(0, 1, 7, 3, 0).delay_seconds, 0.05);
  EXPECT_EQ(injector.fate_of(0, 1, 7, 1, 0).delay_seconds, 0.0);
  EXPECT_EQ(injector.fate_of(0, 1, 7, 5, 0).delay_seconds, 0.0);
  // The window keys on the sending rank, not the destination.
  EXPECT_EQ(injector.fate_of(1, 0, 7, 3, 0).delay_seconds, 0.0);
}

TEST(ParseFaultSpec, ParsesTheDocumentedExample) {
  const FaultPlan plan =
      parse_fault_spec("drop=0.01,delay-ms=5,dup=0.001,seed=42");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.drop, 0.01);
  EXPECT_DOUBLE_EQ(plan.duplicate, 0.001);
  EXPECT_DOUBLE_EQ(plan.delay_ms, 5.0);
  // delay-ms without an explicit delay probability means "every message
  // not otherwise fated is delayed".
  EXPECT_DOUBLE_EQ(plan.delay, 1.0 - 0.01 - 0.001);
  EXPECT_TRUE(plan.message_faults());
}

TEST(ParseFaultSpec, ParsesRecoveryAndSimKeys) {
  const FaultPlan plan = parse_fault_spec(
      "drop=0.05,timeout-ms=25,retries=6,jitter=0.1,slow-frac=0.25,"
      "slow-speed=0.5,stall=3:10:20:7.5");
  EXPECT_DOUBLE_EQ(plan.recv_timeout_ms, 25.0);
  EXPECT_EQ(plan.max_retries, 6);
  EXPECT_DOUBLE_EQ(plan.link_jitter, 0.1);
  EXPECT_DOUBLE_EQ(plan.slow_node_fraction, 0.25);
  EXPECT_DOUBLE_EQ(plan.slow_node_speed, 0.5);
  ASSERT_EQ(plan.stalls.size(), 1u);
  EXPECT_EQ(plan.stalls[0].rank, 3);
  EXPECT_EQ(plan.stalls[0].first_seq, 10u);
  EXPECT_EQ(plan.stalls[0].last_seq, 20u);
  EXPECT_DOUBLE_EQ(plan.stalls[0].extra_delay_ms, 7.5);
}

TEST(ParseFaultSpec, RejectsUnknownKeysAndMalformedValues) {
  EXPECT_THROW(parse_fault_spec("chaos=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop=lots"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop=2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("stall=1:2"), std::invalid_argument);
}

/// Structural view of a trace: per-track event signature sequences with the
/// run-dependent parts (timestamps, flow ids) stripped.
std::vector<std::vector<std::tuple<int, std::string, int, int, std::int64_t,
                                   std::int64_t>>>
trace_shape(const obs::Trace& trace) {
  std::vector<std::vector<std::tuple<int, std::string, int, int, std::int64_t,
                                     std::int64_t>>>
      shape;
  for (const obs::Track& track : trace.tracks) {
    auto& events = shape.emplace_back();
    for (const obs::Event& event : track.events)
      events.emplace_back(static_cast<int>(event.kind), event.name,
                          event.source, event.dest, event.tag, event.bytes);
  }
  return shape;
}

TEST(DisabledInjector, IsByteIdenticalToNoInjectorRun) {
  // The zero-cost-when-disabled contract: threading a disabled injector
  // through a distributed run must change nothing observable — factored
  // bits, per-rank traffic counters, and the recorded event structure.
  const core::PatternDistribution distribution(core::make_2dbc(2, 2), 6,
                                               /*symmetric=*/false);
  Rng rng(21);
  const linalg::DenseMatrix original = linalg::diag_dominant_matrix(24, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, 4);

  obs::Recorder plain_recorder;
  const dist::DistRunResult plain =
      dist::distributed_lu(input, distribution, {}, &plain_recorder);
  ASSERT_TRUE(plain.ok);

  FaultInjector disabled{FaultPlan{}};
  obs::Recorder faulty_recorder;
  const dist::DistRunResult with_injector = dist::distributed_lu(
      input, distribution, {}, &faulty_recorder, &disabled);
  ASSERT_TRUE(with_injector.ok);

  for (std::int64_t i = 0; i < plain.factored.dim(); ++i)
    for (std::int64_t j = 0; j < plain.factored.dim(); ++j)
      EXPECT_DOUBLE_EQ(plain.factored.at(i, j), with_injector.factored.at(i, j));
  EXPECT_EQ(plain.tile_messages, with_injector.tile_messages);
  EXPECT_EQ(plain.tile_messages_received,
            with_injector.tile_messages_received);
  ASSERT_EQ(plain.report.per_rank.size(), with_injector.report.per_rank.size());
  for (std::size_t rank = 0; rank < plain.report.per_rank.size(); ++rank) {
    EXPECT_EQ(plain.report.per_rank[rank].messages_sent,
              with_injector.report.per_rank[rank].messages_sent);
    EXPECT_EQ(plain.report.per_rank[rank].doubles_sent,
              with_injector.report.per_rank[rank].doubles_sent);
    EXPECT_EQ(plain.report.per_rank[rank].messages_received,
              with_injector.report.per_rank[rank].messages_received);
    EXPECT_EQ(plain.report.per_rank[rank].doubles_received,
              with_injector.report.per_rank[rank].doubles_received);
  }
  const FaultStats stats = with_injector.report.faults;
  EXPECT_EQ(stats.drops, 0);
  EXPECT_EQ(stats.duplicates, 0);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.timeout_waits, 0);
  EXPECT_EQ(stats.dedup_discards, 0);

  const obs::Trace plain_trace = plain_recorder.take();
  const obs::Trace faulty_trace = faulty_recorder.take();
  EXPECT_EQ(faulty_trace.count(obs::EventKind::kFault), 0);
  EXPECT_EQ(trace_shape(plain_trace), trace_shape(faulty_trace));
}

TEST(TimedRecv, TimeoutThrowsTypedErrorNamingSourceAndTag) {
  std::atomic<int> caught{0};
  vmpi::run_ranks(2, [&](vmpi::RankContext& ctx) {
    if (ctx.rank() != 1) return;  // rank 0 stays silent on purpose
    try {
      ctx.recv(0, 7, vmpi::RecvOptions{/*timeout_seconds=*/0.01,
                                       /*max_retries=*/0});
      ADD_FAILURE() << "recv returned without a message";
    } catch (const vmpi::RecvTimeoutError& error) {
      EXPECT_EQ(error.source(), 0);
      EXPECT_EQ(error.tag(), 7);
      EXPECT_EQ(error.attempts(), 1);
      caught.fetch_add(1);
    }
  });
  EXPECT_EQ(caught.load(), 1);
}

TEST(TimedRecv, RetryRecoversDroppedMessageWithExactCounts) {
  FaultPlan plan;
  plan.drop = 1.0;                 // every transmission is dropped...
  plan.max_drops_per_message = 2;  // ...until the second retransmission
  plan.recv_timeout_ms = 20.0;
  plan.max_retries = 12;
  FaultInjector injector(plan);
  obs::Recorder recorder;
  vmpi::Payload received;
  const vmpi::RunReport report = vmpi::run_ranks(
      2,
      [&](vmpi::RankContext& ctx) {
        if (ctx.rank() == 0) {
          ctx.send(1, 5, vmpi::Payload{1.0, 2.0, 3.0});
          ctx.barrier();  // the drop happened before the receiver waits
        } else {
          ctx.barrier();
          received = ctx.recv(0, 5);
        }
      },
      &recorder, &injector);
  EXPECT_EQ(received, (vmpi::Payload{1.0, 2.0, 3.0}));
  // Deterministic tally: original send dropped, first retransmit dropped,
  // second retransmit capped by max_drops_per_message and delivered.
  EXPECT_EQ(report.faults.drops, 2);
  EXPECT_EQ(report.faults.retries, 2);
  EXPECT_EQ(report.faults.timeout_waits, 2);
  EXPECT_EQ(report.faults.dedup_discards, 0);
  // App-level counters are untouched by the recovery traffic.
  EXPECT_EQ(report.per_rank[0].messages_sent, 1);
  EXPECT_EQ(report.per_rank[1].messages_received, 1);

  // The recovery shows up as kFault events and fault_* metrics rows, never
  // as extra kSend/kRecv events.
  const obs::Trace trace = recorder.take();
  EXPECT_EQ(trace.count(obs::EventKind::kSend), 1);
  EXPECT_EQ(trace.count(obs::EventKind::kRecv), 1);
  EXPECT_GT(trace.count(obs::EventKind::kFault), 0);
  bool saw_retry = false;
  bool saw_timeout = false;
  for (const obs::Track& track : trace.tracks)
    for (const obs::Event& event : track.events) {
      saw_retry = saw_retry || event.name == "retry";
      saw_timeout = saw_timeout || event.name == "timeout";
    }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_timeout);
  std::ostringstream csv;
  obs::write_metrics_csv(csv, trace);
  EXPECT_NE(csv.str().find("fault_retry"), std::string::npos);
  EXPECT_NE(csv.str().find("fault_timeout"), std::string::npos);
}

TEST(TimedRecv, ExhaustedRetriesEscapeRunRanks) {
  FaultPlan plan;
  plan.drop = 1.0;  // unbounded: no retransmission can ever get through
  plan.recv_timeout_ms = 5.0;
  plan.max_retries = 2;
  FaultInjector injector(plan);
  EXPECT_THROW(
      vmpi::run_ranks(
          2,
          [](vmpi::RankContext& ctx) {
            if (ctx.rank() == 0) {
              ctx.send(1, 9, vmpi::Payload{4.0});
              ctx.barrier();
            } else {
              ctx.barrier();
              ctx.recv(0, 9);
            }
          },
          nullptr, &injector),
      vmpi::RecvTimeoutError);
  EXPECT_EQ(injector.stats().retries, 2);
}

TEST(Duplicates, AreDiscardedBySequenceNumber) {
  FaultPlan plan;
  plan.duplicate = 1.0;  // every message arrives twice
  FaultInjector injector(plan);
  std::vector<double> values;
  const vmpi::RunReport report = vmpi::run_ranks(
      2,
      [&](vmpi::RankContext& ctx) {
        if (ctx.rank() == 0) {
          for (int i = 0; i < 4; ++i)
            ctx.send(1, 7, vmpi::Payload{static_cast<double>(i)});
        } else {
          for (int i = 0; i < 4; ++i) values.push_back(ctx.recv(0, 7)[0]);
        }
      },
      nullptr, &injector);
  EXPECT_EQ(values, (std::vector<double>{0.0, 1.0, 2.0, 3.0}));
  EXPECT_EQ(report.faults.duplicates, 4);
  // Receives discard every stale copy they scan past; the duplicate of the
  // last message has no later receive to collide with.
  EXPECT_EQ(report.faults.dedup_discards, 3);
  EXPECT_EQ(report.per_rank[0].messages_sent, 4);
  EXPECT_EQ(report.per_rank[1].messages_received, 4);
}

TEST(Delays, PreservePerStreamFifoOrder) {
  FaultPlan plan;
  plan.delay = 1.0;  // every message takes the delay-thread detour
  plan.delay_ms = 2.0;
  FaultInjector injector(plan);
  std::vector<double> values;
  const vmpi::RunReport report = vmpi::run_ranks(
      2,
      [&](vmpi::RankContext& ctx) {
        if (ctx.rank() == 0) {
          for (int i = 0; i < 5; ++i)
            ctx.send(1, 3, vmpi::Payload{static_cast<double>(i)});
        } else {
          for (int i = 0; i < 5; ++i) values.push_back(ctx.recv(0, 3)[0]);
        }
      },
      nullptr, &injector);
  // Jittered delays can reorder deliveries on the wire; sequence numbers
  // must re-establish the send order at the receiver.
  EXPECT_EQ(values, (std::vector<double>{0.0, 1.0, 2.0, 3.0, 4.0}));
  EXPECT_EQ(report.faults.delays, 5);
  EXPECT_EQ(report.faults.drops, 0);
}

TEST(SimFaults, VirtualTimeRecoveryIsDeterministicAndCountsStay) {
  const core::PatternDistribution distribution(core::make_2dbc(2, 2), 6,
                                               /*symmetric=*/true);
  sim::MachineConfig machine;
  machine.nodes = 4;
  const sim::SimReport clean = sim::simulate_cholesky(6, distribution, machine);

  machine.faults.seed = 7;
  machine.faults.drop = 0.3;
  machine.faults.recv_timeout_ms = 5.0;
  const sim::SimReport faulty =
      sim::simulate_cholesky(6, distribution, machine);
  const sim::SimReport again = sim::simulate_cholesky(6, distribution, machine);
  // Virtual-time recovery: app-level message counts still match the clean
  // run, drops were recovered by retries, and the perturbed schedule is a
  // pure function of the seed.
  EXPECT_EQ(faulty.messages, clean.messages);
  EXPECT_GT(faulty.faults.drops, 0);
  EXPECT_EQ(faulty.faults.retries, faulty.faults.drops);
  EXPECT_GE(faulty.makespan_seconds, clean.makespan_seconds);
  EXPECT_DOUBLE_EQ(faulty.makespan_seconds, again.makespan_seconds);
  EXPECT_EQ(faulty.faults.drops, again.faults.drops);

  machine.faults = fault::FaultPlan{};
  machine.faults.link_jitter = 0.2;
  machine.faults.slow_node_fraction = 0.5;
  machine.faults.slow_node_speed = 0.5;
  const sim::SimReport jittered =
      sim::simulate_cholesky(6, distribution, machine);
  const sim::SimReport jittered_again =
      sim::simulate_cholesky(6, distribution, machine);
  EXPECT_EQ(jittered.messages, clean.messages);
  EXPECT_DOUBLE_EQ(jittered.makespan_seconds,
                   jittered_again.makespan_seconds);
  // Link/node perturbation alone never drops anything.
  EXPECT_EQ(jittered.faults.drops, 0);
  EXPECT_EQ(jittered.faults.retries, 0);
}

TEST(DistSolve, SurvivesDropsBitIdentically) {
  const core::PatternDistribution distribution(core::make_2dbc(2, 2), 5,
                                               /*symmetric=*/false);
  Rng rng(31);
  const linalg::DenseMatrix original = linalg::diag_dominant_matrix(20, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, 4);
  std::vector<double> b(20);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = rng.uniform() * 2.0 - 1.0;

  const dist::DistSolveResult clean =
      dist::distributed_lu_solve(input, b, distribution);
  ASSERT_TRUE(clean.ok);

  FaultPlan plan;
  plan.drop = 0.05;
  plan.duplicate = 0.02;
  plan.recv_timeout_ms = 25.0;
  FaultInjector injector(plan);
  const dist::DistSolveResult faulty = dist::distributed_lu_solve(
      input, b, distribution, {}, nullptr, &injector);
  ASSERT_TRUE(faulty.ok);
  ASSERT_EQ(clean.x.size(), faulty.x.size());
  for (std::size_t i = 0; i < clean.x.size(); ++i)
    EXPECT_DOUBLE_EQ(clean.x[i], faulty.x[i]);
  EXPECT_EQ(clean.factor_messages, faulty.factor_messages);
  EXPECT_EQ(clean.solve_messages, faulty.solve_messages);
}

}  // namespace
}  // namespace anyblock::fault
