// Chaos soak matrix: {drop 0, 0.01, 0.05} x {p2p, tree, chain} x {LU on
// G-2DBC P=23, Cholesky on GCR&M P=31}.  Every cell must complete
// bit-for-bit identical to the sequential reference, and the post-dedup
// application-level message counters must still equal the Eq. 1/2 closed
// forms of core/cost — the reliability protocol may retry and discard as
// much as it needs, but none of it may leak into the measured counts.
//
// ANYBLOCK_CHAOS_SEED selects the fault-schedule seed (default 42) so CI
// can sweep several schedules over the same matrix.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>

#include "comm/config.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/gcrm.hpp"
#include "dist/dist_factorization.hpp"
#include "fault/fault.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/generators.hpp"
#include "util/rng.hpp"

namespace anyblock::dist {
namespace {

constexpr std::int64_t kNb = 4;  // tiny tiles keep the 23/31-thread runs fast
constexpr std::int64_t kT = 12;  // enough tiles that every fault band fires

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("ANYBLOCK_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 42;
}

fault::FaultPlan chaos_plan(double drop) {
  fault::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.drop = drop;
  if (drop > 0.0) {
    plan.duplicate = 0.01;  // exercise dedup alongside retransmission
    plan.delay = 0.01;      // and the reorder path
    plan.delay_ms = 2.0;
  }
  plan.recv_timeout_ms = 25.0;
  plan.max_retries = 12;
  return plan;
}

using ChaosCell = std::tuple<double, comm::Algorithm>;

std::string cell_name(const ::testing::TestParamInfo<ChaosCell>& info) {
  const auto [drop, algorithm] = info.param;
  std::string name = drop == 0.0   ? "clean"
                     : drop < 0.02 ? "drop1pct"
                                   : "drop5pct";
  return name + "_" + comm::algorithm_name(algorithm);
}

void check_fault_counters(double drop, const fault::FaultStats& stats) {
  if (drop >= 0.05) {
    // Hundreds of messages at a 5% drop rate: every seed produces drops,
    // each of which the protocol must have retried to complete the run.
    EXPECT_GT(stats.drops, 0);
    EXPECT_GT(stats.retries, 0);
  } else if (drop > 0.0) {
    // At 1% an individual band can miss for an unlucky seed; the combined
    // drop/duplicate/delay schedule still fires with near certainty.
    EXPECT_GT(stats.drops + stats.duplicates + stats.delays, 0);
  } else {
    EXPECT_EQ(stats.drops, 0);
    EXPECT_EQ(stats.retries, 0);
    EXPECT_EQ(stats.duplicates, 0);
    EXPECT_EQ(stats.dedup_discards, 0);
  }
}

class ChaosLu : public ::testing::TestWithParam<ChaosCell> {};

TEST_P(ChaosLu, G2dbc23BitIdenticalWithExactCounts) {
  const auto [drop, algorithm] = GetParam();
  comm::CollectiveConfig config;
  config.algorithm = algorithm;
  config.chain_chunks = 3;

  const core::Pattern pattern = core::make_g2dbc(23);
  const core::PatternDistribution distribution(pattern, kT,
                                               /*symmetric=*/false);
  Rng rng = Rng::for_stream(7, 0);  // data seed is independent of the plan
  const linalg::DenseMatrix original =
      linalg::diag_dominant_matrix(kT * kNb, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, kNb);

  fault::FaultInjector injector(chaos_plan(drop));
  const DistRunResult result =
      distributed_lu(input, distribution, config, nullptr, &injector);
  ASSERT_TRUE(result.ok);

  linalg::TiledMatrix sequential =
      linalg::TiledMatrix::from_dense(original, kNb);
  ASSERT_TRUE(linalg::tiled_lu_nopiv(sequential));
  for (std::int64_t i = 0; i < sequential.dim(); ++i)
    for (std::int64_t j = 0; j < sequential.dim(); ++j)
      EXPECT_DOUBLE_EQ(result.factored.at(i, j), sequential.at(i, j));

  const std::int64_t predicted =
      core::exact_lu_messages(distribution, kT, config);
  EXPECT_EQ(result.tile_messages, predicted);
  EXPECT_EQ(result.tile_messages_received, predicted);
  check_fault_counters(drop, result.report.faults);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChaosLu,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.05),
                       ::testing::Values(comm::Algorithm::kEagerP2P,
                                         comm::Algorithm::kBinomialTree,
                                         comm::Algorithm::kPipelinedChain)),
    cell_name);

class ChaosCholesky : public ::testing::TestWithParam<ChaosCell> {};

TEST_P(ChaosCholesky, Gcrm31BitIdenticalWithExactCounts) {
  const auto [drop, algorithm] = GetParam();
  comm::CollectiveConfig config;
  config.algorithm = algorithm;
  config.chain_chunks = 3;

  // GCR&M construction is randomized and can fail for a given seed; scan a
  // few seeds for a valid P=31 pattern (deterministic across runs).
  core::GcrmResult built;
  for (std::uint64_t seed = 0; seed < 50 && !built.valid; ++seed)
    built = core::gcrm_build(31, 8, seed);
  ASSERT_TRUE(built.valid);
  const core::PatternDistribution distribution(built.pattern, kT,
                                               /*symmetric=*/true);
  Rng rng = Rng::for_stream(7, 1);
  const linalg::DenseMatrix original = linalg::spd_matrix(kT * kNb, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, kNb);

  fault::FaultInjector injector(chaos_plan(drop));
  const DistRunResult result =
      distributed_cholesky(input, distribution, config, nullptr, &injector);
  ASSERT_TRUE(result.ok);

  linalg::TiledMatrix sequential =
      linalg::TiledMatrix::from_dense(original, kNb);
  ASSERT_TRUE(linalg::tiled_cholesky(sequential));
  for (std::int64_t i = 0; i < sequential.dim(); ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      EXPECT_DOUBLE_EQ(result.factored.at(i, j), sequential.at(i, j));

  const std::int64_t predicted =
      core::exact_cholesky_messages(distribution, kT, config);
  EXPECT_EQ(result.tile_messages, predicted);
  EXPECT_EQ(result.tile_messages_received, predicted);
  check_fault_counters(drop, result.report.faults);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChaosCholesky,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.05),
                       ::testing::Values(comm::Algorithm::kEagerP2P,
                                         comm::Algorithm::kBinomialTree,
                                         comm::Algorithm::kPipelinedChain)),
    cell_name);

class Chaos25d : public ::testing::TestWithParam<ChaosCell> {};

TEST_P(Chaos25d, TwoLayerLuFaultedMatchesCleanWithExactCounts) {
  // The 2.5D cell: LU on G-2DBC P_b = 8 stacked to c = 2 (16 ranks), so
  // the inter-layer reduce band takes faults alongside the panel
  // multicasts.  A c > 1 run is not bit-comparable to the sequential
  // reference (updates sum in a different order), so the oracle is the
  // fault-free 2.5D run: faulted output bit-identical, post-dedup counts
  // equal to the 2.5D closed form.
  const auto [drop, algorithm] = GetParam();
  comm::CollectiveConfig config;
  config.algorithm = algorithm;
  config.chain_chunks = 3;

  const core::ReplicatedDistribution distribution(
      std::make_shared<core::PatternDistribution>(core::make_g2dbc(8), kT,
                                                  /*symmetric=*/false),
      2);
  Rng rng = Rng::for_stream(7, 2);
  const linalg::DenseMatrix original =
      linalg::diag_dominant_matrix(kT * kNb, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, kNb);

  const DistRunResult clean = distributed_lu_25d(input, distribution, config);
  ASSERT_TRUE(clean.ok);

  fault::FaultInjector injector(chaos_plan(drop));
  const DistRunResult result =
      distributed_lu_25d(input, distribution, config, nullptr, &injector);
  ASSERT_TRUE(result.ok);

  for (std::int64_t i = 0; i < clean.factored.dim(); ++i)
    for (std::int64_t j = 0; j < clean.factored.dim(); ++j)
      EXPECT_DOUBLE_EQ(result.factored.at(i, j), clean.factored.at(i, j));

  const std::int64_t predicted =
      core::exact_lu_messages_25d(distribution, kT, config);
  EXPECT_EQ(clean.tile_messages, predicted);
  EXPECT_EQ(result.tile_messages, predicted);
  EXPECT_EQ(result.tile_messages_received, predicted);
  check_fault_counters(drop, result.report.faults);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Chaos25d,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.05),
                       ::testing::Values(comm::Algorithm::kEagerP2P,
                                         comm::Algorithm::kBinomialTree,
                                         comm::Algorithm::kPipelinedChain)),
    cell_name);

}  // namespace
}  // namespace anyblock::dist
