// True multi-process integration: spawns the real `anyblock` binary (path
// injected by CMake as ANYBLOCK_CLI_PATH) and drives `anyblock launch`
// meshes of 2-3 OS processes.  Every `run` child verifies itself — factor
// bit-identical to the sequential reference, global message counts equal
// to the Eq. 1/Eq. 2 closed forms, --crosscheck against the in-process
// backend — and the launcher propagates the worst child exit code, so a
// zero exit here certifies the whole mesh.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace anyblock::net {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  const std::string command = std::string(ANYBLOCK_CLI_PATH) + " " + args +
                              " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  CliResult result;
  char chunk[4096];
  while (std::fgets(chunk, sizeof chunk, pipe) != nullptr)
    result.output += chunk;
  const int status = pclose(pipe);
  result.exit_code = status < 0 ? status : WEXITSTATUS(status);
  return result;
}

TEST(Multiproc, LuG2dbc23AcrossTwoProcesses) {
  const CliResult result = run_cli(
      "launch --procs 2 -- run --kernel lu --nodes 23 --tiles 12 "
      "--crosscheck");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("bit-identical"), std::string::npos)
      << result.output;
  EXPECT_EQ(result.output.find("FAILED"), std::string::npos) << result.output;
}

TEST(Multiproc, CholeskyGcrm31AcrossThreeProcesses) {
  const CliResult result = run_cli(
      "launch --procs 3 -- run --kernel cholesky --nodes 31 --tiles 10 "
      "--crosscheck");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("GCR&M"), std::string::npos) << result.output;
  EXPECT_EQ(result.output.find("FAILED"), std::string::npos) << result.output;
}

TEST(Multiproc, ChaosCellSurvivesRealProcessBoundary) {
  // 5% drops + duplicates + delays injected independently in both
  // processes from one seeded plan; the run must stay bit-identical with
  // closed-form counts — the fault layer rides above the socket seam.
  const CliResult result = run_cli(
      "launch --procs 2 -- run --kernel lu --nodes 23 --tiles 12 "
      "--faults drop=0.05,dup=0.01,delay=0.01,delay-ms=2,timeout-ms=25 "
      "--crosscheck");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("retries"), std::string::npos)
      << result.output;
  EXPECT_EQ(result.output.find("FAILED"), std::string::npos) << result.output;
}

TEST(Multiproc, TreeCollectiveAcrossTwoProcesses) {
  const CliResult result = run_cli(
      "launch --procs 2 -- run --kernel cholesky --nodes 31 --tiles 10 "
      "--collective tree");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_EQ(result.output.find("FAILED"), std::string::npos) << result.output;
}

TEST(Multiproc, SocketWithoutRendezvousFailsWithHint) {
  // Asking for the socket backend outside a launch must fail fast with a
  // message that names the fix — except the 1-process degenerate mesh,
  // which needs no rendezvous at all.
  const CliResult direct =
      run_cli("run --kernel lu --nodes 23 --tiles 8 --transport socket");
  EXPECT_EQ(direct.exit_code, 0)
      << "socket with process_count 1 degenerates to a mesh of one\n"
      << direct.output;
  setenv("ANYBLOCK_PROCS", "2", 1);
  setenv("ANYBLOCK_PROC", "0", 1);
  const CliResult missing =
      run_cli("run --kernel lu --nodes 23 --tiles 8 --transport socket");
  unsetenv("ANYBLOCK_PROCS");
  unsetenv("ANYBLOCK_PROC");
  EXPECT_NE(missing.exit_code, 0) << missing.output;
  EXPECT_NE(missing.output.find("rendezvous"), std::string::npos)
      << missing.output;
  EXPECT_NE(missing.output.find("anyblock launch"), std::string::npos)
      << missing.output;
}

TEST(Multiproc, LaunchWithoutChildCommandFailsWithUsage) {
  const CliResult result = run_cli("launch --procs 2");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("missing child command"), std::string::npos)
      << result.output;
}

}  // namespace
}  // namespace anyblock::net
