#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace anyblock::net {
namespace {

// Strips the u32 length prefix and checks it matches the body size — what
// the connection's reassembly buffer does before calling decode_frame.
std::string_view body_of(const std::string& frame) {
  EXPECT_GE(frame.size(), sizeof(std::uint32_t));
  std::uint32_t length = 0;
  std::memcpy(&length, frame.data(), sizeof length);
  EXPECT_EQ(length, frame.size() - sizeof length);
  return std::string_view(frame).substr(sizeof length);
}

TEST(Frame, HelloRoundTrip) {
  const Frame frame = decode_frame(body_of(encode_hello(3)));
  EXPECT_EQ(frame.type, FrameType::kHello);
  EXPECT_EQ(frame.process, 3);
}

TEST(Frame, DataRoundTrip) {
  vmpi::WireMessage message;
  message.source = 5;
  message.dest = 17;
  message.tag = (std::int64_t{1} << 40) + 7;
  message.flow = (std::uint64_t{2} << 48) | 99;
  message.seq = 12345;
  message.data = {1.5, -2.25, 0.0, 1e300};

  const Frame frame = decode_frame(body_of(encode_data(message)));
  EXPECT_EQ(frame.type, FrameType::kData);
  EXPECT_EQ(frame.message.source, message.source);
  EXPECT_EQ(frame.message.dest, message.dest);
  EXPECT_EQ(frame.message.tag, message.tag);
  EXPECT_EQ(frame.message.flow, message.flow);
  EXPECT_EQ(frame.message.seq, message.seq);
  EXPECT_EQ(frame.message.data, message.data);
}

TEST(Frame, EmptyPayloadRoundTrip) {
  vmpi::WireMessage message;
  message.source = 0;
  message.dest = 1;
  const Frame frame = decode_frame(body_of(encode_data(message)));
  EXPECT_TRUE(frame.message.data.empty());
}

TEST(Frame, BarrierRoundTrip) {
  const Frame frame =
      decode_frame(body_of(encode_barrier(std::uint64_t{1} << 60)));
  EXPECT_EQ(frame.type, FrameType::kBarrier);
  EXPECT_EQ(frame.generation, std::uint64_t{1} << 60);
}

TEST(Frame, BlobRoundTrip) {
  const std::string bytes("\x00\x01\xffpayload", 10);
  const Frame frame = decode_frame(body_of(encode_blob(2, bytes)));
  EXPECT_EQ(frame.type, FrameType::kBlob);
  EXPECT_EQ(frame.process, 2);
  EXPECT_EQ(frame.blob, bytes);
}

TEST(Frame, BlobAllRoundTrip) {
  const std::vector<std::string> blobs = {"first", "", std::string(1000, 'x')};
  const Frame frame = decode_frame(body_of(encode_blob_all(blobs)));
  EXPECT_EQ(frame.type, FrameType::kBlobAll);
  EXPECT_EQ(frame.blobs, blobs);
}

TEST(Frame, TruncatedBodyThrows) {
  const std::string frame = encode_data({0, 1, 7, 0, 0, {1.0, 2.0, 3.0}});
  const std::string_view body = body_of(frame);
  for (const std::size_t keep : {std::size_t{0}, body.size() / 2}) {
    EXPECT_THROW(decode_frame(body.substr(0, keep)), std::runtime_error);
  }
}

TEST(Frame, UnknownTypeThrows) {
  std::string body("\x7f", 1);
  EXPECT_THROW(decode_frame(body), std::runtime_error);
}

TEST(Frame, DataCountBeyondBodyThrows) {
  // A kData header claiming more doubles than the body carries must be
  // rejected, not read out of bounds.
  std::string frame = encode_data({0, 1, 7, 0, 0, {1.0, 2.0}});
  std::string_view body = body_of(frame);
  std::string corrupted(body);
  const std::size_t count_offset =
      1 + sizeof(std::int32_t) * 2 + sizeof(std::int64_t) +
      sizeof(std::uint64_t) * 2;
  const std::uint64_t bogus = 1u << 20;
  std::memcpy(corrupted.data() + count_offset, &bogus, sizeof bogus);
  EXPECT_THROW(decode_frame(corrupted), std::runtime_error);
}

}  // namespace
}  // namespace anyblock::net
