// Transport conformance suite: the semantics every vmpi backend must share,
// instantiated over a registry of backends.  Each entry provides one hook —
// "run this rank body over R ranks" — so registering a third backend is a
// one-line addition to backends() below.
//
// The socket entry hosts BOTH endpoints of a 2-process mesh inside this
// test process (each driven from its own thread over a loopback socket
// pair), which exercises the full wire path — framing, epoll loop, barrier
// markers, blob gather — while keeping the suite a plain in-process gtest.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_transport.hpp"
#include "vmpi/vmpi.hpp"

namespace anyblock::net {
namespace {

using vmpi::Payload;
using vmpi::RankContext;
using vmpi::RunReport;

using RankBody = std::function<void(RankContext&)>;

/// Deletes the rendezvous directory contents on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    std::string pattern = "/tmp/anyblock-conformance-XXXXXX";
    if (mkdtemp(pattern.data()) == nullptr)
      throw std::runtime_error("mkdtemp failed");
    path = pattern;
  }
  ~TempDir() {
    const std::string cleanup = "rm -rf '" + path + "'";
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());
  }
};

RunReport run_inproc(int ranks, const RankBody& body) {
  return vmpi::run_ranks(ranks, body);
}

/// Both endpoints of a 2-process loopback mesh, hosted in this test
/// process.  One pair can run several rank bodies back to back, like a
/// real process pair would.
class SocketPair {
 public:
  explicit SocketPair(int ranks) {
    SocketTransportConfig config;
    config.world_size = ranks;
    config.process_count = 2;
    config.rendezvous_dir = rendezvous_.path;

    // Both constructors block on the mesh handshake, so they must overlap.
    // Each side gets its config by value before the thread starts.
    SocketTransportConfig other = config;
    other.process_index = 1;
    config.process_index = 0;
    std::exception_ptr setup_error;
    std::thread dialer([&, other] {
      try {
        endpoint1_ = std::make_unique<SocketTransport>(other);
      } catch (...) {
        setup_error = std::current_exception();
      }
    });
    try {
      endpoint0_ = std::make_unique<SocketTransport>(config);
    } catch (...) {
      setup_error = std::current_exception();
    }
    dialer.join();
    if (setup_error) std::rethrow_exception(setup_error);
  }

  RunReport run(int ranks, const RankBody& body) {
    std::exception_ptr side_error;
    std::thread side([&] {
      try {
        vmpi::RunOptions options;
        options.transport = endpoint1_.get();
        vmpi::run_ranks(ranks, body, options);
      } catch (...) {
        side_error = std::current_exception();
      }
    });
    RunReport report;
    std::exception_ptr main_error;
    try {
      vmpi::RunOptions options;
      options.transport = endpoint0_.get();
      report = vmpi::run_ranks(ranks, body, options);
    } catch (...) {
      main_error = std::current_exception();
    }
    side.join();
    if (main_error) std::rethrow_exception(main_error);
    if (side_error) std::rethrow_exception(side_error);
    return report;
  }

 private:
  TempDir rendezvous_;
  std::unique_ptr<SocketTransport> endpoint0_;
  std::unique_ptr<SocketTransport> endpoint1_;
};

/// Splits `ranks` over a fresh 2-process socket mesh.
RunReport run_socket_pair(int ranks, const RankBody& body) {
  return SocketPair(ranks).run(ranks, body);
}

struct Backend {
  std::string name;
  RunReport (*run)(int, const RankBody&);
};

std::vector<Backend> backends() {
  return {
      {"inproc", run_inproc},
      {"socket", run_socket_pair},  // a new backend is one more line here
  };
}

class TransportConformance : public ::testing::TestWithParam<Backend> {};

// Ranks 0 and `kRanks - 1` always live in different processes under the
// socket backend's 2-way block split, so cross-boundary paths are covered.
constexpr int kRanks = 5;

TEST_P(TransportConformance, PerSourceTagStreamsStayOrdered) {
  constexpr int kMessages = 50;
  GetParam().run(kRanks, [](RankContext& ctx) {
    const int last = ctx.size() - 1;
    if (ctx.rank() == 0) {
      for (int k = 0; k < kMessages; ++k) {
        ctx.send(last, /*tag=*/7, Payload{static_cast<double>(k)});
        ctx.send(last, /*tag=*/8, Payload{static_cast<double>(100 + k)});
      }
    } else if (ctx.rank() == last) {
      // Interleaved tags: each (source, tag) stream arrives in send order
      // regardless of how the other stream is drained.
      for (int k = 0; k < kMessages; ++k)
        EXPECT_EQ(ctx.recv(0, 8).at(0), 100 + k);
      for (int k = 0; k < kMessages; ++k)
        EXPECT_EQ(ctx.recv(0, 7).at(0), k);
    }
  });
}

TEST_P(TransportConformance, MultisendFansOutWithExactCounts) {
  const RunReport report = GetParam().run(kRanks, [](RankContext& ctx) {
    if (ctx.rank() == 0) {
      std::vector<int> dests;
      for (int r = 1; r < ctx.size(); ++r) dests.push_back(r);
      ctx.multisend(dests, /*tag=*/3, Payload{2.5, 3.5});
      EXPECT_EQ(ctx.traffic().messages_sent, ctx.size() - 1);
      EXPECT_EQ(ctx.traffic().doubles_sent, 2 * (ctx.size() - 1));
    } else {
      EXPECT_EQ(ctx.recv(0, 3), (Payload{2.5, 3.5}));
      EXPECT_EQ(ctx.traffic().messages_received, 1);
    }
  });
  EXPECT_EQ(report.total_messages(), kRanks - 1);
  EXPECT_EQ(report.total_messages_received(), kRanks - 1);
  EXPECT_EQ(report.total_doubles(), 2 * (kRanks - 1));
}

TEST_P(TransportConformance, RecvAnyDrainsEverySource) {
  static constexpr int kPerSource = 8;
  GetParam().run(kRanks, [](RankContext& ctx) {
    const int last = ctx.size() - 1;
    if (ctx.rank() == last) {
      // recv_any must not starve any source: all senders' messages arrive.
      std::vector<int> seen(static_cast<std::size_t>(ctx.size()), 0);
      for (int k = 0; k < kPerSource * (ctx.size() - 1); ++k) {
        const auto [envelope, data] = ctx.recv_any();
        EXPECT_EQ(envelope.tag, 11);
        EXPECT_EQ(data.at(0), envelope.source);
        ++seen[static_cast<std::size_t>(envelope.source)];
      }
      for (int r = 0; r < last; ++r)
        EXPECT_EQ(seen[static_cast<std::size_t>(r)], kPerSource);
      EXPECT_FALSE(ctx.probe().has_value());
    } else {
      for (int k = 0; k < kPerSource; ++k)
        ctx.send(last, /*tag=*/11, Payload{static_cast<double>(ctx.rank())});
    }
  });
}

TEST_P(TransportConformance, TimedRecvThrowsAfterRetries) {
  EXPECT_THROW(
      GetParam().run(kRanks,
                     [](RankContext& ctx) {
                       if (ctx.rank() != 0) return;
                       vmpi::RecvOptions options;
                       options.timeout_seconds = 0.01;
                       options.max_retries = 2;
                       ctx.recv(1, /*tag=*/404, options);
                     }),
      vmpi::RecvTimeoutError);
}

TEST_P(TransportConformance, BarrierMakesPriorSendsVisible) {
  GetParam().run(kRanks, [](RankContext& ctx) {
    const int last = ctx.size() - 1;
    if (ctx.rank() == 0)
      ctx.send(last, /*tag=*/21, Payload{4.0});
    ctx.barrier();
    if (ctx.rank() == last) {
      // The barrier's delivery-visibility guarantee: the pre-barrier send
      // is already queued, so a non-blocking probe must see it.
      const auto envelope = ctx.probe();
      ASSERT_TRUE(envelope.has_value());
      EXPECT_EQ(envelope->source, 0);
      EXPECT_EQ(envelope->tag, 21);
      EXPECT_EQ(ctx.recv(0, 21).at(0), 4.0);
    }
    ctx.barrier();  // back-to-back barriers must not wedge
  });
}

TEST_P(TransportConformance, BroadcastAndAllreduceAgreeEverywhere) {
  constexpr int kRoot = kRanks - 1;  // remote from rank 0 under socket
  std::mutex mutex;
  std::vector<double> sums;
  GetParam().run(kRanks, [&](RankContext& ctx) {
    const Payload value = ctx.broadcast(
        kRoot, ctx.rank() == kRoot ? Payload{6.5, -1.0} : Payload{});
    EXPECT_EQ(value, (Payload{6.5, -1.0}));
    const Payload total =
        ctx.allreduce_sum(Payload{static_cast<double>(ctx.rank())});
    const std::lock_guard<std::mutex> lock(mutex);
    sums.push_back(total.at(0));
  });
  ASSERT_EQ(sums.size(), static_cast<std::size_t>(kRanks));
  for (const double sum : sums)
    EXPECT_EQ(sum, kRanks * (kRanks - 1) / 2.0);
}

TEST_P(TransportConformance, RepeatedRunsAreIndependent) {
  const Backend& backend = GetParam();
  for (int round = 0; round < 2; ++round) {
    const RunReport report = backend.run(kRanks, [&](RankContext& ctx) {
      if (ctx.rank() == 0)
        ctx.send(ctx.size() - 1, /*tag=*/round, Payload{1.0 + round});
      if (ctx.rank() == ctx.size() - 1)
        EXPECT_EQ(ctx.recv(0, round).at(0), 1.0 + round);
    });
    EXPECT_EQ(report.total_messages(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::ValuesIn(backends()),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param.name;
                         });

TEST(SocketTransport, BackToBackRunsReuseOneMesh) {
  // One mesh, several run_ranks() rounds — like `anyblock launch` running
  // LU then Cholesky.  Arrivals between runs (a fast peer's next-round
  // sends landing while our sink is detached) must be queued, not lost.
  SocketPair mesh(kRanks);
  for (int round = 0; round < 3; ++round) {
    const RunReport report = mesh.run(kRanks, [&](RankContext& ctx) {
      if (ctx.rank() == 0)
        ctx.send(ctx.size() - 1, /*tag=*/round, Payload{1.0 + round});
      if (ctx.rank() == ctx.size() - 1)
        EXPECT_EQ(ctx.recv(0, round).at(0), 1.0 + round);
    });
    EXPECT_EQ(report.total_messages(), 1);
    EXPECT_EQ(report.total_messages_received(), 1);
  }
}

TEST(SocketTransport, RanksOfProcessCoverEveryRankOnce) {
  for (const int world : {1, 2, 5, 23, 31}) {
    for (int processes = 1; processes <= world && processes <= 4;
         ++processes) {
      std::set<int> seen;
      for (int p = 0; p < processes; ++p)
        for (const int rank : ranks_of_process(world, processes, p))
          EXPECT_TRUE(seen.insert(rank).second);
      EXPECT_EQ(seen.size(), static_cast<std::size_t>(world));
    }
  }
}

TEST(SocketTransport, SocketWithoutRendezvousIsRejected) {
  SocketTransportConfig config;
  config.world_size = 4;
  config.process_count = 2;
  EXPECT_THROW(SocketTransport{config}, std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::net
