#include "net/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

namespace anyblock::net {
namespace {

/// Sets an environment variable for one test, restoring the old value on
/// scope exit (tests in this binary run single-threaded).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value == nullptr)
      unsetenv(name);
    else
      setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_)
      setenv(name_, old_.c_str(), 1);
    else
      unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(Bootstrap, RendezvousDirRespectsTmpdir) {
  const std::string base = ::testing::TempDir() + "/anyblock_rdv_base";
  std::filesystem::create_directories(base);
  ScopedEnv env("TMPDIR", base.c_str());
  const std::string dir = make_rendezvous_dir();
  EXPECT_EQ(dir.rfind(base + "/anyblock-rdv-", 0), 0u) << dir;
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  std::filesystem::remove_all(dir);
}

TEST(Bootstrap, RendezvousDirStripsTrailingSlashes) {
  const std::string base = ::testing::TempDir() + "/anyblock_rdv_slash";
  std::filesystem::create_directories(base);
  const std::string with_slashes = base + "//";
  ScopedEnv env("TMPDIR", with_slashes.c_str());
  const std::string dir = make_rendezvous_dir();
  EXPECT_EQ(dir.rfind(base + "/anyblock-rdv-", 0), 0u) << dir;
  std::filesystem::remove_all(dir);
}

TEST(Bootstrap, RendezvousDirFallsBackToTmp) {
  ScopedEnv env("TMPDIR", nullptr);
  const std::string dir = make_rendezvous_dir();
  EXPECT_EQ(dir.rfind("/tmp/anyblock-rdv-", 0), 0u) << dir;
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  std::filesystem::remove_all(dir);
}

TEST(Bootstrap, RendezvousDirThrowsWhenBaseMissing) {
  const std::string missing = ::testing::TempDir() + "/anyblock_rdv_missing";
  std::filesystem::remove_all(missing);
  ScopedEnv env("TMPDIR", missing.c_str());
  EXPECT_THROW(make_rendezvous_dir(), std::runtime_error);
}

TEST(Bootstrap, SpecFromEnvReadsLauncherVariables) {
  ScopedEnv transport(kEnvTransport, "socket");
  ScopedEnv rendezvous(kEnvRendezvous, "/some/dir");
  ScopedEnv process(kEnvProcess, "3");
  ScopedEnv processes(kEnvProcesses, "8");
  const TransportSpec spec = spec_from_env();
  EXPECT_EQ(spec.backend, "socket");
  EXPECT_EQ(spec.rendezvous_dir, "/some/dir");
  EXPECT_EQ(spec.process_index, 3);
  EXPECT_EQ(spec.process_count, 8);
}

}  // namespace
}  // namespace anyblock::net
