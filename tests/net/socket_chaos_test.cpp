// Chaos over sockets: the PR-5 fault injector and at-least-once/dedup
// layer run UNCHANGED above the transport seam, so the chaos matrix holds
// verbatim when ranks are spread over a real socket mesh — {1%, 5%} drop
// (plus duplicates and delays) x {eager, binomial} x {LU on G-2DBC P=23,
// Cholesky on GCR&M P=31}, every cell bit-identical to the sequential
// reference with post-dedup counts equal to the Eq. 1/Eq. 2 closed forms.
//
// Both mesh endpoints live in this test process; each endpoint constructs
// its own FaultInjector from the same plan, and because fates are pure in
// (seed, source, dest, tag, seq, attempt) the two processes jointly replay
// one deterministic fault schedule.
#include <gtest/gtest.h>

#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <tuple>

#include "comm/config.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/gcrm.hpp"
#include "dist/dist_factorization.hpp"
#include "fault/fault.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/generators.hpp"
#include "net/socket_transport.hpp"
#include "util/rng.hpp"

namespace anyblock::net {
namespace {

constexpr std::int64_t kNb = 4;
constexpr std::int64_t kT = 12;

fault::FaultPlan chaos_plan(double drop) {
  fault::FaultPlan plan;
  plan.seed = 42;
  plan.drop = drop;
  plan.duplicate = 0.01;
  plan.delay = 0.01;
  plan.delay_ms = 2.0;
  plan.recv_timeout_ms = 25.0;
  plan.max_retries = 12;
  return plan;
}

struct TempDir {
  std::string path;
  TempDir() {
    std::string pattern = "/tmp/anyblock-chaos-XXXXXX";
    if (mkdtemp(pattern.data()) == nullptr)
      throw std::runtime_error("mkdtemp failed");
    path = pattern;
  }
  ~TempDir() {
    const std::string cleanup = "rm -rf '" + path + "'";
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());
  }
};

/// Runs `factorize` once per endpoint of a fresh 2-process mesh, each on
/// its own driver thread with its own scoped ambient transport and its own
/// injector — exactly how two `anyblock launch` children behave.  Returns
/// the endpoint-0 result (the one hosting rank 0's gathered factor) and
/// the endpoint-1 result for cross-endpoint count checks.
using Factorize = std::function<dist::DistRunResult(fault::FaultInjector*)>;

std::pair<dist::DistRunResult, dist::DistRunResult> run_mesh(
    int ranks, double drop, const Factorize& factorize) {
  TempDir rendezvous;
  SocketTransportConfig config;
  config.world_size = ranks;
  config.process_count = 2;
  config.rendezvous_dir = rendezvous.path;

  SocketTransportConfig other = config;
  other.process_index = 1;
  config.process_index = 0;
  std::unique_ptr<SocketTransport> endpoint0;
  std::unique_ptr<SocketTransport> endpoint1;
  std::exception_ptr setup_error;
  std::thread dialer([&, other] {
    try {
      endpoint1 = std::make_unique<SocketTransport>(other);
    } catch (...) {
      setup_error = std::current_exception();
    }
  });
  try {
    endpoint0 = std::make_unique<SocketTransport>(config);
  } catch (...) {
    setup_error = std::current_exception();
  }
  dialer.join();
  if (setup_error) std::rethrow_exception(setup_error);

  dist::DistRunResult results[2];
  std::exception_ptr side_error;
  std::thread side([&] {
    try {
      const vmpi::ScopedTransport ambient(endpoint1.get());
      fault::FaultInjector injector(chaos_plan(drop));
      results[1] = factorize(&injector);
    } catch (...) {
      side_error = std::current_exception();
    }
  });
  std::exception_ptr main_error;
  try {
    const vmpi::ScopedTransport ambient(endpoint0.get());
    fault::FaultInjector injector(chaos_plan(drop));
    results[0] = factorize(&injector);
  } catch (...) {
    main_error = std::current_exception();
  }
  side.join();
  if (main_error) std::rethrow_exception(main_error);
  if (side_error) std::rethrow_exception(side_error);
  return {std::move(results[0]), std::move(results[1])};
}

using ChaosCell = std::tuple<double, comm::Algorithm>;

std::string cell_name(const ::testing::TestParamInfo<ChaosCell>& info) {
  const auto [drop, algorithm] = info.param;
  return std::string(drop < 0.02 ? "drop1pct" : "drop5pct") + "_" +
         comm::algorithm_name(algorithm);
}

class SocketChaosLu : public ::testing::TestWithParam<ChaosCell> {};

TEST_P(SocketChaosLu, G2dbc23BitIdenticalWithExactCounts) {
  const auto [drop, algorithm] = GetParam();
  comm::CollectiveConfig config;
  config.algorithm = algorithm;
  config.chain_chunks = 3;

  const core::Pattern pattern = core::make_g2dbc(23);
  const core::PatternDistribution distribution(pattern, kT,
                                               /*symmetric=*/false);
  Rng rng = Rng::for_stream(7, 0);
  const linalg::DenseMatrix original =
      linalg::diag_dominant_matrix(kT * kNb, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, kNb);

  const auto [root, other] = run_mesh(
      23, drop, [&](fault::FaultInjector* injector) {
        return dist::distributed_lu(input, distribution, config, nullptr,
                                    injector);
      });
  ASSERT_TRUE(root.ok);
  ASSERT_TRUE(other.ok);

  linalg::TiledMatrix sequential =
      linalg::TiledMatrix::from_dense(original, kNb);
  ASSERT_TRUE(linalg::tiled_lu_nopiv(sequential));
  for (std::int64_t i = 0; i < sequential.dim(); ++i)
    for (std::int64_t j = 0; j < sequential.dim(); ++j)
      EXPECT_DOUBLE_EQ(root.factored.at(i, j), sequential.at(i, j));

  // tile_messages sums only the endpoint's local ranks, so the closed form
  // must be met by the two endpoints jointly — and on the consume side too
  // (post-dedup), which is what makes drops and duplicates invisible.
  const std::int64_t predicted =
      core::exact_lu_messages(distribution, kT, config);
  EXPECT_EQ(root.tile_messages + other.tile_messages, predicted);
  EXPECT_EQ(root.tile_messages_received + other.tile_messages_received,
            predicted);
  if (drop >= 0.05) {
    EXPECT_GT(root.report.faults.drops, 0);
    EXPECT_GT(root.report.faults.retries, 0);
  }
  // The merged global report is identical on both endpoints.
  EXPECT_EQ(root.report.total_messages(), other.report.total_messages());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SocketChaosLu,
    ::testing::Combine(::testing::Values(0.01, 0.05),
                       ::testing::Values(comm::Algorithm::kEagerP2P,
                                         comm::Algorithm::kBinomialTree)),
    cell_name);

class SocketChaosCholesky : public ::testing::TestWithParam<ChaosCell> {};

TEST_P(SocketChaosCholesky, Gcrm31BitIdenticalWithExactCounts) {
  const auto [drop, algorithm] = GetParam();
  comm::CollectiveConfig config;
  config.algorithm = algorithm;
  config.chain_chunks = 3;

  core::GcrmResult built;
  for (std::uint64_t seed = 0; seed < 50 && !built.valid; ++seed)
    built = core::gcrm_build(31, 8, seed);
  ASSERT_TRUE(built.valid);
  const core::PatternDistribution distribution(built.pattern, kT,
                                               /*symmetric=*/true);
  Rng rng = Rng::for_stream(7, 1);
  const linalg::DenseMatrix original = linalg::spd_matrix(kT * kNb, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, kNb);

  const auto [root, other] = run_mesh(
      31, drop, [&](fault::FaultInjector* injector) {
        return dist::distributed_cholesky(input, distribution, config, nullptr,
                                          injector);
      });
  ASSERT_TRUE(root.ok);
  ASSERT_TRUE(other.ok);

  linalg::TiledMatrix sequential =
      linalg::TiledMatrix::from_dense(original, kNb);
  ASSERT_TRUE(linalg::tiled_cholesky(sequential));
  for (std::int64_t i = 0; i < sequential.dim(); ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      EXPECT_DOUBLE_EQ(root.factored.at(i, j), sequential.at(i, j));

  const std::int64_t predicted =
      core::exact_cholesky_messages(distribution, kT, config);
  EXPECT_EQ(root.tile_messages + other.tile_messages, predicted);
  EXPECT_EQ(root.tile_messages_received + other.tile_messages_received,
            predicted);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SocketChaosCholesky,
    ::testing::Combine(::testing::Values(0.01, 0.05),
                       ::testing::Values(comm::Algorithm::kEagerP2P,
                                         comm::Algorithm::kBinomialTree)),
    cell_name);

}  // namespace
}  // namespace anyblock::net
