#include "util/math.hpp"

#include <gtest/gtest.h>

namespace anyblock {
namespace {

TEST(CeilDiv, BasicCases) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
  EXPECT_EQ(ceil_div(23, 5), 5);
  EXPECT_EQ(ceil_div(24, 5), 5);
  EXPECT_EQ(ceil_div(25, 5), 5);
  EXPECT_EQ(ceil_div(26, 5), 6);
}

TEST(Isqrt, ExactSquares) {
  for (std::int64_t r = 0; r <= 1000; ++r) {
    EXPECT_EQ(isqrt_floor(r * r), r);
    EXPECT_EQ(isqrt_ceil(r * r), r);
    EXPECT_TRUE(is_square(r * r));
  }
}

TEST(Isqrt, BetweenSquares) {
  for (std::int64_t r = 1; r <= 1000; ++r) {
    EXPECT_EQ(isqrt_floor(r * r + 1), r);
    EXPECT_EQ(isqrt_ceil(r * r + 1), r + 1);
    EXPECT_FALSE(is_square(r * r + 1));
    EXPECT_EQ(isqrt_floor(r * r + 2 * r), r) << r;  // (r+1)^2 - 1
    EXPECT_EQ(isqrt_ceil(r * r + 2 * r), r + 1);
  }
}

TEST(Isqrt, PaperValues) {
  // a = ceil(sqrt(P)) for the paper's experimental node counts.
  EXPECT_EQ(isqrt_ceil(23), 5);
  EXPECT_EQ(isqrt_ceil(31), 6);
  EXPECT_EQ(isqrt_ceil(35), 6);
  EXPECT_EQ(isqrt_ceil(39), 7);
}

TEST(Isqrt, LargeValues) {
  const std::int64_t big = 3037000499LL;  // floor(sqrt(2^63 - 1))
  EXPECT_EQ(isqrt_floor(big * big), big);
  EXPECT_EQ(isqrt_floor(big * big - 1), big - 1);
}

TEST(Gcd, BasicCases) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(17, 5), 1);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(gcd64(7, 0), 7);
  EXPECT_EQ(gcd64(36, 24), 12);
}

}  // namespace
}  // namespace anyblock
