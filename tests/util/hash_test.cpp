#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <string>

namespace anyblock {
namespace {

// Both hashes are on-disk format constants (store record CRCs, content
// digests), so they are pinned against published reference vectors — a
// changed constant here means existing manifests stop verifying.

TEST(Hash, Fnv1a64ReferenceVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);  // offset basis
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, Crc32ReferenceVectors) {
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);  // the classic check value
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414fa339u);
}

TEST(Hash, SensitiveToEveryByte) {
  const std::string base = "anyblock pattern store record";
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::string mutated = base;
    mutated[i] ^= 0x01;
    EXPECT_NE(fnv1a64(mutated), fnv1a64(base)) << i;
    EXPECT_NE(crc32(mutated), crc32(base)) << i;
  }
}

TEST(Hash, EmbeddedNulBytesCount) {
  const std::string with_nul("ab\0cd", 5);
  EXPECT_NE(fnv1a64(with_nul), fnv1a64("abcd"));
  EXPECT_NE(crc32(with_nul), crc32("abcd"));
}

}  // namespace
}  // namespace anyblock
