#include "util/log.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/stopwatch.hpp"

namespace anyblock {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, EmitsWithoutCrashingAtEveryLevel) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  log_debug("debug ", 42);
  log_info("info ", 1.5);
  log_warn("warn ", "text");
  log_error("error");
}

TEST(Log, SuppressedBelowThreshold) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Nothing observable to assert on stderr portably; the contract under
  // test is that formatting of suppressed messages is skipped and the call
  // is safe.
  log_debug("must not format", 1);
  log_info("must not format", 2);
}

TEST(Log, ConcurrentLoggingIsSafe) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kError);  // keep the test output quiet
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([w] {
      for (int k = 0; k < 100; ++k) log_error("w", w, " k", k);
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  const double first = watch.seconds();
  EXPECT_GE(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double second = watch.seconds();
  EXPECT_GT(second, first);
  watch.reset();
  EXPECT_LT(watch.seconds(), second);
}

}  // namespace
}  // namespace anyblock
