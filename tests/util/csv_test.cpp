#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace anyblock {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"P", "pattern", "T"});
  csv.row(23, "20x23", 9.652);
  EXPECT_EQ(out.str(), "P,pattern,T\n23,20x23,9.652\n");
}

TEST(Csv, EscapesSeparatorsAndQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("a,b", "say \"hi\"", "plain");
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",plain\n");
}

TEST(Csv, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(CsvWriter::escape("clean"), "clean");
}

TEST(Csv, RowFields) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row_fields({"1", "2", "3"});
  EXPECT_EQ(out.str(), "1,2,3\n");
}

TEST(Csv, MixedTypes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(1, 2.5, "x", std::string("y"));
  EXPECT_EQ(out.str(), "1,2.5,x,y\n");
}

}  // namespace
}  // namespace anyblock
