#include "util/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace anyblock {
namespace {

/// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::initializer_list<const char*> args) {
    for (const char* a : args) storage_.emplace_back(a);
    for (auto& s : storage_) pointers_.push_back(s.data());
  }
  int argc() { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(Args, DefaultsApply) {
  ArgParser parser("prog", "test");
  parser.add("nodes", "23", "node count");
  Argv argv({"prog"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(parser.get_int("nodes"), 23);
}

TEST(Args, SpaceSeparatedValue) {
  ArgParser parser("prog", "test");
  parser.add("nodes", "1", "node count");
  Argv argv({"prog", "--nodes", "39"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(parser.get_int("nodes"), 39);
}

TEST(Args, EqualsValue) {
  ArgParser parser("prog", "test");
  parser.add("tile", "2000", "tile size");
  Argv argv({"prog", "--tile=500"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(parser.get_int("tile"), 500);
}

TEST(Args, Flags) {
  ArgParser parser("prog", "test");
  parser.add_flag("verbose", "chatty");
  Argv argv({"prog", "--verbose"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(parser.get_flag("verbose"));

  ArgParser parser2("prog", "test");
  parser2.add_flag("verbose", "chatty");
  Argv argv2({"prog"});
  ASSERT_TRUE(parser2.parse(argv2.argc(), argv2.argv()));
  EXPECT_FALSE(parser2.get_flag("verbose"));
}

TEST(Args, UnknownOptionRejected) {
  ArgParser parser("prog", "test");
  Argv argv({"prog", "--bogus", "1"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));
}

TEST(Args, IntList) {
  ArgParser parser("prog", "test");
  parser.add("sizes", "1,2,3", "matrix sizes");
  Argv argv({"prog", "--sizes", "50000,100000,200000"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  const auto sizes = parser.get_int_list("sizes");
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 50000);
  EXPECT_EQ(sizes[2], 200000);
}

TEST(Args, DoubleValues) {
  ArgParser parser("prog", "test");
  parser.add("bw", "12.5", "bandwidth GB/s");
  Argv argv({"prog", "--bw", "25.0"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_DOUBLE_EQ(parser.get_double("bw"), 25.0);
}

TEST(Args, PositionalCollected) {
  ArgParser parser("prog", "test");
  Argv argv({"prog", "file1", "file2"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "file1");
}

TEST(Args, HelpReturnsFalse) {
  ArgParser parser("prog", "test");
  Argv argv({"prog", "--help"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));
}

TEST(Args, DuplicateRegistrationThrows) {
  ArgParser parser("prog", "test");
  parser.add("nodes", "23", "node count");
  EXPECT_THROW(parser.add("nodes", "7", "again"), std::logic_error);
  EXPECT_THROW(parser.add_flag("nodes", "as a flag"), std::logic_error);
}

using ArgsDeathTest = ::testing::Test;

// A mistyped value must be a loud error naming the option, not a silent 0
// (the strtoll-with-null-endptr bug this guards against).
TEST(ArgsDeathTest, MalformedIntExitsWithError) {
  ArgParser parser("prog", "test");
  parser.add("t", "48", "tile grid side");
  Argv argv({"prog", "--t", "banana"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EXIT(static_cast<void>(parser.get_int("t")), ::testing::ExitedWithCode(1), "--t");
}

TEST(ArgsDeathTest, TrailingGarbageIntExitsWithError) {
  ArgParser parser("prog", "test");
  parser.add("nodes", "23", "node count");
  Argv argv({"prog", "--nodes", "23x"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EXIT(static_cast<void>(parser.get_int("nodes")), ::testing::ExitedWithCode(1),
              "--nodes");
}

TEST(ArgsDeathTest, OverflowIntExitsWithError) {
  ArgParser parser("prog", "test");
  parser.add("nodes", "23", "node count");
  Argv argv({"prog", "--nodes", "99999999999999999999999999"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EXIT(static_cast<void>(parser.get_int("nodes")), ::testing::ExitedWithCode(1),
              "in range");
}

TEST(ArgsDeathTest, MalformedDoubleExitsWithError) {
  ArgParser parser("prog", "test");
  parser.add("bw", "12.5", "bandwidth GB/s");
  Argv argv({"prog", "--bw", "fast"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EXIT(static_cast<void>(parser.get_double("bw")), ::testing::ExitedWithCode(1), "--bw");
}

TEST(ArgsDeathTest, MalformedIntListEntryExitsWithError) {
  ArgParser parser("prog", "test");
  parser.add("sizes", "1,2", "matrix sizes");
  Argv argv({"prog", "--sizes", "100,oops,300"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EXIT(static_cast<void>(parser.get_int_list("sizes")), ::testing::ExitedWithCode(1),
              "--sizes");
}

TEST(ArgsDeathTest, EmptyValueExitsWithError) {
  ArgParser parser("prog", "test");
  parser.add("t", "48", "tile grid side");
  Argv argv({"prog", "--t="});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EXIT(static_cast<void>(parser.get_int("t")), ::testing::ExitedWithCode(1), "--t");
}

}  // namespace
}  // namespace anyblock
