#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

namespace anyblock {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedProducesNonZeroStream) {
  Rng rng(0);
  bool any_nonzero = false;
  for (int i = 0; i < 16; ++i) any_nonzero |= (rng() != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 0.05 * expected);
  }
}

TEST(Rng, BetweenCoversInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled.begin(), shuffled.end());
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleOfEmptyAndSingleton) {
  Rng rng(23);
  std::vector<int> empty;
  rng.shuffle(empty.begin(), empty.end());
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one.begin(), one.end());
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace anyblock
