#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

namespace anyblock {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedProducesNonZeroStream) {
  Rng rng(0);
  bool any_nonzero = false;
  for (int i = 0; i < 16; ++i) any_nonzero |= (rng() != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 0.05 * expected);
  }
}

TEST(Rng, BetweenCoversInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled.begin(), shuffled.end());
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(SplitSeed, DeterministicAndStreamSensitive) {
  EXPECT_EQ(split_seed(42, 0), split_seed(42, 0));
  EXPECT_NE(split_seed(42, 0), split_seed(42, 1));
  EXPECT_NE(split_seed(42, 0), split_seed(43, 0));
  // Neighbouring streams of one root must not collide even when the root
  // is degenerate.
  EXPECT_NE(split_seed(0, 0), split_seed(0, 1));
}

TEST(SplitSeed, StreamsAreIndependent) {
  // Per-rank streams split from one root must not be shifted copies of
  // each other (the failure mode of seeding with root + rank).
  Rng a = Rng::for_stream(99, 0);
  Rng b = Rng::for_stream(99, 1);
  int equal = 0;
  std::vector<std::uint64_t> from_a(64);
  for (auto& v : from_a) v = a();
  std::uint64_t first_b = b();
  for (int lag = 0; lag < 63; ++lag) {
    if (from_a[static_cast<std::size_t>(lag)] == first_b) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitSeed, ForStreamMatchesManualConstruction) {
  Rng direct(split_seed(7, 3));
  Rng streamed = Rng::for_stream(7, 3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(direct(), streamed());
}

TEST(Rng, ShuffleOfEmptyAndSingleton) {
  Rng rng(23);
  std::vector<int> empty;
  rng.shuffle(empty.begin(), empty.end());
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one.begin(), one.end());
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace anyblock
