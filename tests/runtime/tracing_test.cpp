#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>

#include "runtime/task_engine.hpp"

namespace anyblock::runtime {
namespace {

TEST(Tracing, OffByDefault) {
  TaskEngine engine(2);
  engine.submit([] {}, {}, 0, "a");
  engine.wait_all();
  EXPECT_TRUE(engine.take_trace().empty());
}

TEST(Tracing, RecordsOneEventPerTask) {
  TaskEngine engine(2);
  engine.enable_tracing();
  for (int k = 0; k < 20; ++k) engine.submit([] {}, {}, 0, "work");
  engine.wait_all();
  const auto trace = engine.take_trace();
  EXPECT_EQ(trace.size(), 20u);
  for (const auto& event : trace) {
    EXPECT_EQ(event.name, "work");
    EXPECT_GE(event.worker, 0);
    EXPECT_LT(event.worker, 2);
    EXPECT_LE(event.start_seconds, event.end_seconds);
    EXPECT_GE(event.start_seconds, 0.0);
  }
}

TEST(Tracing, TakeTraceClears) {
  TaskEngine engine(1);
  engine.enable_tracing();
  engine.submit([] {}, {}, 0, "x");
  engine.wait_all();
  EXPECT_EQ(engine.take_trace().size(), 1u);
  EXPECT_TRUE(engine.take_trace().empty());
}

TEST(Tracing, DependentTasksDoNotOverlapInTime) {
  TaskEngine engine(4);
  engine.enable_tracing();
  const HandleId h = engine.register_data();
  std::atomic<int> dummy{0};
  for (int k = 0; k < 10; ++k) {
    engine.submit([&] { ++dummy; }, {{h, AccessMode::kReadWrite}}, 0,
                  "chain" + std::to_string(k));
  }
  engine.wait_all();
  auto trace = engine.take_trace();
  ASSERT_EQ(trace.size(), 10u);
  // Chained tasks execute in submission order; each starts no earlier than
  // the previous one's start (monotone schedule).
  std::sort(trace.begin(), trace.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.name < b.name;  // chain0 < chain1 < ... (single digit)
            });
  for (std::size_t k = 1; k < trace.size(); ++k)
    EXPECT_GE(trace[k].start_seconds, trace[k - 1].start_seconds - 1e-9);
}

}  // namespace
}  // namespace anyblock::runtime
