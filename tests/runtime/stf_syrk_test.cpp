#include <gtest/gtest.h>

#include "linalg/factorizations.hpp"
#include "runtime/stf_factorizations.hpp"
#include "util/rng.hpp"

namespace anyblock::runtime {
namespace {

linalg::DenseMatrix random_dense(std::int64_t rows, std::int64_t cols,
                                 Rng& rng) {
  linalg::DenseMatrix m(rows, cols);
  for (std::int64_t i = 0; i < rows; ++i)
    for (std::int64_t j = 0; j < cols; ++j)
      m(i, j) = 2.0 * rng.uniform() - 1.0;
  return m;
}

struct StfSyrkCase {
  std::int64_t t;
  std::int64_t k;
  std::int64_t nb;
  int workers;
};

class StfSyrkTest : public ::testing::TestWithParam<StfSyrkCase> {};

TEST_P(StfSyrkTest, MatchesSequentialBitwise) {
  const auto param = GetParam();
  Rng rng(31);
  const linalg::DenseMatrix a_dense =
      random_dense(param.t * param.nb, param.k * param.nb, rng);
  const linalg::DenseMatrix c_dense =
      random_dense(param.t * param.nb, param.t * param.nb, rng);
  const linalg::TiledPanel a =
      linalg::TiledPanel::from_dense(a_dense, param.nb);

  linalg::TiledMatrix sequential =
      linalg::TiledMatrix::from_dense(c_dense, param.nb);
  linalg::tiled_syrk(a, sequential);

  linalg::TiledMatrix task_based =
      linalg::TiledMatrix::from_dense(c_dense, param.nb);
  TaskEngine engine(param.workers);
  stf_syrk(engine, a, task_based);

  for (std::int64_t i = 0; i < task_based.dim(); ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      EXPECT_DOUBLE_EQ(task_based.at(i, j), sequential.at(i, j))
          << "(" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(Shapes, StfSyrkTest,
                         ::testing::Values(StfSyrkCase{1, 1, 4, 1},
                                           StfSyrkCase{3, 2, 4, 2},
                                           StfSyrkCase{4, 4, 3, 4},
                                           StfSyrkCase{6, 3, 4, 3}));

TEST(StfSyrk, RejectsShapeMismatch) {
  linalg::TiledPanel a(3, 2, 4);
  linalg::TiledMatrix c(2, 4);
  TaskEngine engine(2);
  EXPECT_THROW(stf_syrk(engine, a, c), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::runtime
