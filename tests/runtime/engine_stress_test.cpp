// Randomized stress test: the STF engine must produce exactly the result a
// sequential execution of the submitted tasks would, for arbitrary DAGs.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/task_engine.hpp"
#include "util/rng.hpp"

namespace anyblock::runtime {
namespace {

struct StressCase {
  int handles;
  int tasks;
  int workers;
  std::uint64_t seed;
};

class EngineStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(EngineStressTest, MatchesSequentialReplay) {
  const auto param = GetParam();

  // Generate a random program: each task reads 0-2 handles and writes 1,
  // and mutates the written cell from the values it read.  The same
  // program is replayed sequentially as the oracle.
  struct Op {
    int read_a;   // handle index or -1
    int read_b;   // handle index or -1
    int write;    // handle index
    std::int64_t constant;
  };
  Rng rng(param.seed);
  std::vector<Op> program;
  program.reserve(static_cast<std::size_t>(param.tasks));
  const auto handle_count = static_cast<std::uint64_t>(param.handles);
  for (int k = 0; k < param.tasks; ++k) {
    Op op;
    op.read_a = rng.below(3) == 0
                    ? -1
                    : static_cast<int>(rng.below(handle_count));
    op.read_b = rng.below(3) == 0
                    ? -1
                    : static_cast<int>(rng.below(handle_count));
    op.write = static_cast<int>(rng.below(handle_count));
    op.constant = static_cast<std::int64_t>(rng.below(97));
    program.push_back(op);
  }

  const auto apply = [](const Op& op, std::vector<std::int64_t>& cells) {
    std::int64_t value = op.constant;
    if (op.read_a >= 0) value += 3 * cells[static_cast<std::size_t>(op.read_a)];
    if (op.read_b >= 0) value ^= cells[static_cast<std::size_t>(op.read_b)];
    auto& out = cells[static_cast<std::size_t>(op.write)];
    out = out * 2 + value;
  };

  // Oracle: sequential replay.
  std::vector<std::int64_t> expected(static_cast<std::size_t>(param.handles),
                                     1);
  for (const Op& op : program) apply(op, expected);

  // Engine execution: declare the same accesses and let the workers race.
  std::vector<std::int64_t> cells(static_cast<std::size_t>(param.handles), 1);
  TaskEngine engine(param.workers);
  std::vector<HandleId> handles(static_cast<std::size_t>(param.handles));
  for (auto& h : handles) h = engine.register_data();
  for (const Op& op : program) {
    std::vector<Access> accesses;
    if (op.read_a >= 0)
      accesses.push_back(
          {handles[static_cast<std::size_t>(op.read_a)], AccessMode::kRead});
    if (op.read_b >= 0)
      accesses.push_back(
          {handles[static_cast<std::size_t>(op.read_b)], AccessMode::kRead});
    accesses.push_back(
        {handles[static_cast<std::size_t>(op.write)], AccessMode::kReadWrite});
    engine.submit([&cells, &apply, op] { apply(op, cells); },
                  std::move(accesses));
  }
  engine.wait_all();
  EXPECT_EQ(cells, expected);
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, EngineStressTest,
    ::testing::Values(StressCase{1, 200, 4, 1}, StressCase{2, 300, 4, 2},
                      StressCase{5, 500, 2, 3}, StressCase{5, 500, 8, 4},
                      StressCase{16, 800, 4, 5}, StressCase{16, 800, 8, 6},
                      StressCase{64, 1000, 4, 7},
                      StressCase{4, 1000, 16, 8}));

}  // namespace
}  // namespace anyblock::runtime
