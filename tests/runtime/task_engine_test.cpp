#include "runtime/task_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace anyblock::runtime {
namespace {

TEST(TaskEngine, RunsASingleTask) {
  TaskEngine engine(2);
  std::atomic<int> counter{0};
  engine.submit([&] { ++counter; }, {});
  engine.wait_all();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_EQ(engine.stats().tasks_executed, 1);
}

TEST(TaskEngine, RejectsZeroWorkers) {
  EXPECT_THROW(TaskEngine(0), std::invalid_argument);
}

TEST(TaskEngine, RejectsUnknownHandle) {
  TaskEngine engine(1);
  EXPECT_THROW(engine.submit([] {}, {{42, AccessMode::kRead}}),
               std::out_of_range);
}

TEST(TaskEngine, SequentialSemanticsOnOneHandle) {
  // 100 read-modify-write tasks on one handle must serialize: the result is
  // deterministic even with many workers.
  TaskEngine engine(4);
  const HandleId h = engine.register_data();
  std::int64_t value = 0;  // protected by the inferred dependency chain
  for (int k = 0; k < 100; ++k) {
    engine.submit([&value, k] { value = value * 2 + k % 3; },
                  {{h, AccessMode::kReadWrite}});
  }
  engine.wait_all();
  std::int64_t expected = 0;
  for (int k = 0; k < 100; ++k) expected = expected * 2 + k % 3;
  EXPECT_EQ(value, expected);
}

TEST(TaskEngine, ReadersRunAfterWriter) {
  TaskEngine engine(4);
  const HandleId h = engine.register_data();
  std::atomic<int> writer_done{0};
  std::atomic<int> readers_after{0};
  engine.submit([&] { writer_done = 1; }, {{h, AccessMode::kWrite}});
  for (int k = 0; k < 8; ++k) {
    engine.submit([&] { readers_after += writer_done.load(); },
                  {{h, AccessMode::kRead}});
  }
  engine.wait_all();
  EXPECT_EQ(readers_after.load(), 8);
}

TEST(TaskEngine, WriteAfterReadWaits) {
  TaskEngine engine(4);
  const HandleId h = engine.register_data();
  std::atomic<int> readers_done{0};
  std::atomic<int> writer_saw{-1};
  engine.submit([] {}, {{h, AccessMode::kWrite}});
  for (int k = 0; k < 6; ++k) {
    engine.submit([&] { ++readers_done; }, {{h, AccessMode::kRead}});
  }
  engine.submit([&] { writer_saw = readers_done.load(); },
                {{h, AccessMode::kWrite}});
  engine.wait_all();
  EXPECT_EQ(writer_saw.load(), 6);
}

TEST(TaskEngine, IndependentTasksRunConcurrently) {
  // With 4 workers and 4 mutually independent blocking tasks, peak
  // concurrency must exceed 1 (they must not serialize).
  TaskEngine engine(4);
  std::atomic<int> arrived{0};
  for (int k = 0; k < 4; ++k) {
    engine.submit(
        [&] {
          ++arrived;
          // Spin until everyone arrived, proving true concurrency.
          while (arrived.load() < 4) {
          }
        },
        {});
  }
  engine.wait_all();
  EXPECT_EQ(engine.stats().peak_concurrency, 4);
}

TEST(TaskEngine, DiamondDependency) {
  //    a
  //   / \    b and c read what a wrote; d writes after both.
  //  b   c
  //   \ /
  //    d
  TaskEngine engine(4);
  const HandleId h = engine.register_data();
  std::vector<int> order;
  std::mutex order_mutex;
  const auto record = [&](int id) {
    const std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(id);
  };
  engine.submit([&] { record(0); }, {{h, AccessMode::kWrite}});
  engine.submit([&] { record(1); }, {{h, AccessMode::kRead}});
  engine.submit([&] { record(2); }, {{h, AccessMode::kRead}});
  engine.submit([&] { record(3); }, {{h, AccessMode::kWrite}});
  engine.wait_all();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
}

TEST(TaskEngine, PriorityBreaksTiesAmongReady) {
  // One worker; submit a low-priority and a high-priority independent task
  // while the worker is blocked: the high-priority one must run first.
  TaskEngine engine(1);
  std::atomic<bool> release{false};
  std::vector<int> order;
  engine.submit(
      [&] {
        while (!release.load()) {
        }
      },
      {}, 0, "blocker");
  engine.submit([&order] { order.push_back(1); }, {}, /*priority=*/1);
  engine.submit([&order] { order.push_back(2); }, {}, /*priority=*/5);
  release = true;
  engine.wait_all();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(TaskEngine, WaitAllIsReusable) {
  TaskEngine engine(2);
  std::atomic<int> counter{0};
  engine.submit([&] { ++counter; }, {});
  engine.wait_all();
  engine.submit([&] { ++counter; }, {});
  engine.wait_all();
  EXPECT_EQ(counter.load(), 2);
}

TEST(TaskEngine, ThrowingTaskRethrownFromWaitAll) {
  TaskEngine engine(2);
  engine.submit([] { throw std::runtime_error("kernel exploded"); }, {});
  try {
    engine.wait_all();
    FAIL() << "wait_all() must rethrow the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "kernel exploded");
  }
  EXPECT_EQ(engine.stats().tasks_failed, 1);
}

TEST(TaskEngine, FailedTaskStillReleasesSuccessors) {
  // Mirrors vmpi::run_ranks: a failure must not deadlock the graph — the
  // dependent task still runs, and wait_all() reports the first error.
  TaskEngine engine(2);
  const HandleId h = engine.register_data();
  std::atomic<bool> successor_ran{false};
  engine.submit([] { throw std::runtime_error("writer failed"); },
                {{h, AccessMode::kWrite}});
  engine.submit([&] { successor_ran = true; }, {{h, AccessMode::kRead}});
  EXPECT_THROW(engine.wait_all(), std::runtime_error);
  EXPECT_TRUE(successor_ran.load());
}

TEST(TaskEngine, EngineReusableAfterFailure) {
  // wait_all() clears the stored exception: the next batch starts clean.
  TaskEngine engine(2);
  engine.submit([] { throw std::runtime_error("first batch"); }, {});
  EXPECT_THROW(engine.wait_all(), std::runtime_error);
  std::atomic<int> counter{0};
  engine.submit([&] { ++counter; }, {});
  engine.wait_all();  // must not rethrow the already-reported error
  EXPECT_EQ(counter.load(), 1);
}

TEST(TaskEngine, FirstOfSeveralFailuresIsReported) {
  TaskEngine engine(1);  // one worker: submission order is execution order
  engine.submit([] { throw std::runtime_error("first"); }, {});
  engine.submit([] { throw std::runtime_error("second"); }, {});
  try {
    engine.wait_all();
    FAIL() << "wait_all() must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(engine.stats().tasks_failed, 2);
}

TEST(TaskEngine, FailedTaskIsMarkedInTrace) {
  TaskEngine engine(1);
  engine.enable_tracing();
  engine.submit([] { throw std::runtime_error("boom"); }, {}, 0, "bad_task");
  EXPECT_THROW(engine.wait_all(), std::runtime_error);
  const std::vector<TraceEvent> trace = engine.take_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].name, "bad_task");
}

TEST(TaskEngine, DependencyEdgeCountIsAccurate) {
  TaskEngine engine(2);
  const HandleId h = engine.register_data();
  engine.submit([] {}, {{h, AccessMode::kWrite}});
  engine.submit([] {}, {{h, AccessMode::kRead}});   // 1 RAW edge
  engine.submit([] {}, {{h, AccessMode::kRead}});   // 1 RAW edge
  engine.submit([] {}, {{h, AccessMode::kWrite}});  // 2 WAR (+0 WAW: cleared)
  engine.wait_all();
  // Edges actually added may be fewer if predecessors already retired; at
  // most 5, and the computation is correct regardless.
  EXPECT_LE(engine.stats().dependency_edges, 5);
}

}  // namespace
}  // namespace anyblock::runtime
