#include "runtime/stf_factorizations.hpp"

#include <gtest/gtest.h>

#include "linalg/factorizations.hpp"
#include "linalg/generators.hpp"
#include "linalg/verify.hpp"
#include "util/rng.hpp"

namespace anyblock::runtime {
namespace {

struct StfCase {
  std::int64_t tiles;
  std::int64_t nb;
  int workers;
  std::uint64_t seed;
};

class StfLuTest : public ::testing::TestWithParam<StfCase> {};

TEST_P(StfLuTest, MatchesSequentialAndHasSmallResidual) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const linalg::DenseMatrix original =
      linalg::diag_dominant_matrix(param.tiles * param.nb, rng);

  linalg::TiledMatrix task_based =
      linalg::TiledMatrix::from_dense(original, param.nb);
  TaskEngine engine(param.workers);
  ASSERT_TRUE(stf_lu_nopiv(engine, task_based));
  EXPECT_LT(linalg::lu_residual(original, task_based), 1e-12);

  // Bitwise identical to the sequential tiled algorithm: the STF engine
  // must impose exactly the sequential-consistency order.
  linalg::TiledMatrix sequential =
      linalg::TiledMatrix::from_dense(original, param.nb);
  ASSERT_TRUE(linalg::tiled_lu_nopiv(sequential));
  for (std::int64_t i = 0; i < task_based.dim(); ++i)
    for (std::int64_t j = 0; j < task_based.dim(); ++j)
      EXPECT_DOUBLE_EQ(task_based.at(i, j), sequential.at(i, j));
}

INSTANTIATE_TEST_SUITE_P(Grids, StfLuTest,
                         ::testing::Values(StfCase{1, 6, 1, 1},
                                           StfCase{3, 6, 2, 2},
                                           StfCase{4, 5, 4, 3},
                                           StfCase{6, 4, 3, 4},
                                           StfCase{8, 4, 8, 5}));

class StfCholeskyTest : public ::testing::TestWithParam<StfCase> {};

TEST_P(StfCholeskyTest, MatchesSequentialAndHasSmallResidual) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const linalg::DenseMatrix original =
      linalg::spd_matrix(param.tiles * param.nb, rng);

  linalg::TiledMatrix task_based =
      linalg::TiledMatrix::from_dense(original, param.nb);
  TaskEngine engine(param.workers);
  ASSERT_TRUE(stf_cholesky(engine, task_based));
  EXPECT_LT(linalg::cholesky_residual(original, task_based), 1e-12);

  linalg::TiledMatrix sequential =
      linalg::TiledMatrix::from_dense(original, param.nb);
  ASSERT_TRUE(linalg::tiled_cholesky(sequential));
  for (std::int64_t i = 0; i < task_based.dim(); ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      EXPECT_DOUBLE_EQ(task_based.at(i, j), sequential.at(i, j));
}

INSTANTIATE_TEST_SUITE_P(Grids, StfCholeskyTest,
                         ::testing::Values(StfCase{1, 6, 1, 11},
                                           StfCase{3, 6, 2, 12},
                                           StfCase{4, 5, 4, 13},
                                           StfCase{6, 4, 3, 14},
                                           StfCase{8, 4, 8, 15}));

TEST(StfFactorizations, LuReportsFailure) {
  linalg::TiledMatrix zeros(3, 4);
  TaskEngine engine(2);
  EXPECT_FALSE(stf_lu_nopiv(engine, zeros));
}

TEST(StfFactorizations, CholeskyReportsFailure) {
  linalg::TiledMatrix zeros(3, 4);
  TaskEngine engine(2);
  EXPECT_FALSE(stf_cholesky(engine, zeros));
}

TEST(StfFactorizations, SubmitsTheFullTaskGraph) {
  // An 8x8 tile LU: task and dependency-edge counts must match the DAG
  // (true concurrency is covered by task_engine_test on blocking tasks —
  // on a single-core host short kernels may never physically overlap).
  Rng rng(42);
  const std::int64_t t = 8;
  linalg::TiledMatrix a = linalg::tiled_diag_dominant(t, 4, rng);
  TaskEngine engine(4);
  ASSERT_TRUE(stf_lu_nopiv(engine, a));
  std::int64_t expected_tasks = 0;
  for (std::int64_t l = 0; l < t; ++l) {
    const std::int64_t k = t - 1 - l;
    expected_tasks += 1 + 2 * k + k * k;
  }
  EXPECT_EQ(engine.stats().tasks_executed, expected_tasks);
  EXPECT_GT(engine.stats().dependency_edges, expected_tasks);
}

}  // namespace
}  // namespace anyblock::runtime
