// Unit tests for the pluggable tile-multicast collectives: every algorithm
// delivers the identical payload to every destination, the measured vmpi
// message counters equal the closed-form multicast_messages prediction,
// send- and receive-side counters balance, and the chain stays exact even
// when the payload is smaller than the chunk count.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "comm/multicast.hpp"
#include "vmpi/vmpi.hpp"

namespace anyblock::comm {
namespace {

using vmpi::Payload;
using vmpi::RankContext;

Payload iota_payload(std::size_t n) {
  Payload data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<double>(i + 1);
  return data;
}

bool member(int rank, const std::vector<int>& dests) {
  return std::find(dests.begin(), dests.end(), rank) != dests.end();
}

/// One multicast from `root` to `dests` across `ranks` threads; checks the
/// payload on every receiver and returns the run's traffic report.
vmpi::RunReport run_multicast(int ranks, int root,
                              const std::vector<int>& dests,
                              const CollectiveConfig& config,
                              std::size_t payload_size) {
  const Payload payload = iota_payload(payload_size);
  return vmpi::run_ranks(ranks, [&](RankContext& ctx) {
    if (ctx.rank() == root) {
      multicast_send(ctx, config, /*tag=*/7, payload, dests);
    } else if (member(ctx.rank(), dests)) {
      const Payload got = multicast_recv(ctx, config, /*tag=*/7, root, dests);
      EXPECT_EQ(got, payload);
    }
  });
}

CollectiveConfig config_for(Algorithm algorithm, std::int64_t chunks = 4) {
  CollectiveConfig config;
  config.algorithm = algorithm;
  config.chain_chunks = chunks;
  return config;
}

class MulticastTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(MulticastTest, DeliversToEveryDestination) {
  const std::vector<int> dests = {0, 3, 5, 6, 7, 1};
  const CollectiveConfig config = config_for(GetParam(), 3);
  const vmpi::RunReport report = run_multicast(8, /*root=*/2, dests, config, 16);
  EXPECT_EQ(report.total_messages(),
            multicast_messages(static_cast<std::int64_t>(dests.size()), config));
  EXPECT_EQ(report.total_messages(), report.total_messages_received());
  EXPECT_EQ(report.total_doubles(), report.total_doubles_received());
}

TEST_P(MulticastTest, SingleReceiverIsOneHop) {
  const CollectiveConfig config = config_for(GetParam(), 2);
  const vmpi::RunReport report =
      run_multicast(3, /*root=*/0, {2}, config, 8);
  EXPECT_EQ(report.total_messages(), multicast_messages(1, config));
}

TEST_P(MulticastTest, EmptyGroupSendsNothing) {
  const CollectiveConfig config = config_for(GetParam());
  const vmpi::RunReport report = run_multicast(2, /*root=*/1, {}, config, 4);
  EXPECT_EQ(report.total_messages(), 0);
}

TEST_P(MulticastTest, ConcurrentGroupsWithDistinctTagsDoNotInterfere) {
  // Two roots multicast different payloads at once; every rank consumes
  // both groups in the same (tag) order, as the dist layer does.
  const CollectiveConfig config = config_for(GetParam(), 3);
  const std::vector<int> group_a = {1, 2, 3};
  const std::vector<int> group_b = {0, 2, 1};
  const Payload payload_a = iota_payload(9);
  Payload payload_b = iota_payload(9);
  for (double& v : payload_b) v = -v;
  const vmpi::RunReport report = vmpi::run_ranks(4, [&](RankContext& ctx) {
    if (ctx.rank() == 0) multicast_send(ctx, config, 1, payload_a, group_a);
    if (member(ctx.rank(), group_a))
      EXPECT_EQ(multicast_recv(ctx, config, 1, 0, group_a), payload_a);
    if (ctx.rank() == 3) multicast_send(ctx, config, 2, payload_b, group_b);
    if (member(ctx.rank(), group_b))
      EXPECT_EQ(multicast_recv(ctx, config, 2, 3, group_b), payload_b);
  });
  EXPECT_EQ(report.total_messages(), 2 * multicast_messages(3, config));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, MulticastTest,
                         ::testing::Values(Algorithm::kEagerP2P,
                                           Algorithm::kBinomialTree,
                                           Algorithm::kPipelinedChain),
                         [](const auto& info) {
                           return algorithm_name(info.param);
                         });

TEST(PipelinedChain, PayloadSmallerThanChunkCountStaysExact) {
  // Chunk count is fixed by config, never by payload size: two doubles cut
  // into five chunks still cost d * 5 messages (trailing chunks empty).
  const CollectiveConfig config = config_for(Algorithm::kPipelinedChain, 5);
  const std::vector<int> dests = {2, 0, 3};
  const vmpi::RunReport report = run_multicast(4, /*root=*/1, dests, config, 2);
  EXPECT_EQ(report.total_messages(), 3 * 5);
  EXPECT_EQ(report.total_messages(), multicast_messages(3, config));
}

TEST(PipelinedChain, RejectsNonPositiveChunkCounts) {
  const CollectiveConfig config = config_for(Algorithm::kPipelinedChain, 0);
  EXPECT_THROW(multicast_messages(3, config), std::invalid_argument);
}

TEST(ClosedForms, MessageCounts) {
  EXPECT_EQ(multicast_messages(5, config_for(Algorithm::kEagerP2P)), 5);
  EXPECT_EQ(multicast_messages(5, config_for(Algorithm::kBinomialTree)), 5);
  EXPECT_EQ(multicast_messages(5, config_for(Algorithm::kPipelinedChain, 4)),
            20);
  for (const Algorithm algorithm :
       {Algorithm::kEagerP2P, Algorithm::kBinomialTree,
        Algorithm::kPipelinedChain}) {
    EXPECT_EQ(multicast_messages(0, config_for(algorithm)), 0);
  }
}

TEST(ClosedForms, CriticalPaths) {
  EXPECT_EQ(multicast_critical_path(5, config_for(Algorithm::kEagerP2P)), 5);
  // ceil(log2(d + 1)) rounds: 1 -> 1, 2..3 -> 2, 4..7 -> 3.
  EXPECT_EQ(multicast_critical_path(1, config_for(Algorithm::kBinomialTree)),
            1);
  EXPECT_EQ(multicast_critical_path(3, config_for(Algorithm::kBinomialTree)),
            2);
  EXPECT_EQ(multicast_critical_path(4, config_for(Algorithm::kBinomialTree)),
            3);
  EXPECT_EQ(multicast_critical_path(7, config_for(Algorithm::kBinomialTree)),
            3);
  // d + chunks - 1 pipelined chunk-hops.
  EXPECT_EQ(
      multicast_critical_path(5, config_for(Algorithm::kPipelinedChain, 4)),
      8);
}

TEST(Config, NamesRoundTrip) {
  for (const Algorithm algorithm :
       {Algorithm::kEagerP2P, Algorithm::kBinomialTree,
        Algorithm::kPipelinedChain}) {
    EXPECT_EQ(parse_algorithm(algorithm_name(algorithm)), algorithm);
  }
  EXPECT_EQ(parse_algorithm("eager"), Algorithm::kEagerP2P);
  EXPECT_EQ(parse_algorithm("binomial"), Algorithm::kBinomialTree);
  EXPECT_EQ(parse_algorithm("pipeline"), Algorithm::kPipelinedChain);
  EXPECT_THROW(parse_algorithm("carrier-pigeon"), std::invalid_argument);
}

TEST(Multicast, TreeFanOutSpreadsTheSendingLoad) {
  // With 7 receivers the binomial root sends ceil(log2(8)) = 3 messages,
  // not 7: forwarding moved the rest onto the receivers.
  const std::vector<int> dests = {1, 2, 3, 4, 5, 6, 7};
  const vmpi::RunReport report = run_multicast(
      8, /*root=*/0, dests, config_for(Algorithm::kBinomialTree), 8);
  EXPECT_EQ(report.per_rank[0].messages_sent, 3);
  EXPECT_EQ(report.total_messages(), 7);
}

}  // namespace
}  // namespace anyblock::comm
