#include "core/block_cyclic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/cost.hpp"

namespace anyblock::core {
namespace {

TEST(BlockCyclic, BasicGrid) {
  const Pattern p = make_2dbc(2, 3);
  EXPECT_EQ(p.rows(), 2);
  EXPECT_EQ(p.cols(), 3);
  EXPECT_EQ(p.num_nodes(), 6);
  EXPECT_TRUE(p.validate().empty());
  EXPECT_TRUE(p.is_balanced());
  EXPECT_DOUBLE_EQ(lu_cost(p), 5.0);  // r + c
}

TEST(BlockCyclic, CostEqualsRowPlusCol) {
  for (std::int64_t r = 1; r <= 8; ++r) {
    for (std::int64_t c = 1; c <= 8; ++c) {
      const Pattern p = make_2dbc(r, c);
      EXPECT_DOUBLE_EQ(lu_cost(p), static_cast<double>(r + c));
    }
  }
}

TEST(BlockCyclic, GridShapesEnumeratesAllFactorizations) {
  const auto shapes = grid_shapes(12);
  // 12 = 12x1, 6x2, 4x3.
  ASSERT_EQ(shapes.size(), 3u);
  EXPECT_EQ(shapes[0], (std::pair<std::int64_t, std::int64_t>{12, 1}));
  EXPECT_EQ(shapes[1], (std::pair<std::int64_t, std::int64_t>{6, 2}));
  EXPECT_EQ(shapes[2], (std::pair<std::int64_t, std::int64_t>{4, 3}));
}

TEST(BlockCyclic, BestGridIsSquarest) {
  EXPECT_EQ(best_grid(16), (std::pair<std::int64_t, std::int64_t>{4, 4}));
  EXPECT_EQ(best_grid(20), (std::pair<std::int64_t, std::int64_t>{5, 4}));
  EXPECT_EQ(best_grid(21), (std::pair<std::int64_t, std::int64_t>{7, 3}));
  EXPECT_EQ(best_grid(22), (std::pair<std::int64_t, std::int64_t>{11, 2}));
  EXPECT_EQ(best_grid(23), (std::pair<std::int64_t, std::int64_t>{23, 1}));
  EXPECT_EQ(best_grid(36), (std::pair<std::int64_t, std::int64_t>{6, 6}));
}

TEST(BlockCyclic, PaperTable1aCosts) {
  // Table Ia: dimensions and cost T of the best 2DBC patterns.  For the two
  // degenerate P x 1 grids the paper prints T = P, but by its own definition
  // T = x-bar + y-bar = 1 + P (each single-cell row holds one node); we
  // assert the formula value, see EXPERIMENTS.md.
  const struct {
    std::int64_t P;
    std::int64_t r, c;
    double T;
  } rows[] = {{16, 4, 4, 8},   {20, 5, 4, 9},  {21, 7, 3, 10},
              {22, 11, 2, 13}, {23, 23, 1, 24}, {30, 6, 5, 11},
              {31, 31, 1, 32}, {35, 7, 5, 12}, {36, 6, 6, 12},
              {39, 13, 3, 16}};
  for (const auto& row : rows) {
    const auto [r, c] = best_grid(row.P);
    EXPECT_EQ(r, row.r) << "P=" << row.P;
    EXPECT_EQ(c, row.c) << "P=" << row.P;
    EXPECT_DOUBLE_EQ(lu_cost(make_2dbc(r, c)), row.T) << "P=" << row.P;
  }
}

TEST(BlockCyclic, EveryNodeOncePerPattern) {
  const Pattern p = best_2dbc(30);
  const auto loads = p.node_loads();
  for (const auto load : loads) EXPECT_EQ(load, 1);
}

TEST(BlockCyclic, AtMostPicksEfficientSmallerCount) {
  // For P = 23, using all nodes forces 23x1 (T = 23); the best per-node
  // efficiency at most 23 uses fewer nodes with a much squarer grid.
  const Pattern p = best_2dbc_at_most(23);
  EXPECT_LT(p.num_nodes(), 23);
  EXPECT_GE(p.num_nodes(), 16);
  const double score = lu_cost(p) / std::sqrt(static_cast<double>(
                                        p.num_nodes()));
  // A perfect square grid scores 2.
  EXPECT_LT(score, 2.3);
}

TEST(BlockCyclic, InvalidInputs) {
  EXPECT_THROW(make_2dbc(0, 3), std::invalid_argument);
  EXPECT_THROW(grid_shapes(0), std::invalid_argument);
  EXPECT_THROW(best_2dbc_at_most(0), std::invalid_argument);
}

TEST(BlockCyclic, SymmetricCostIsLuMinusOne) {
  // Paper, Section V-B: for 2DBC, the symmetric cost equals the
  // non-symmetric cost minus 1.
  const Pattern p = make_2dbc(3, 3);
  EXPECT_DOUBLE_EQ(symmetric_cost(p), lu_cost(p) - 1.0);
  const Pattern q = make_2dbc(6, 2);
  EXPECT_DOUBLE_EQ(symmetric_cost(q), lu_cost(q) - 1.0);
}

}  // namespace
}  // namespace anyblock::core
