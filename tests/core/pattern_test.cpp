#include "core/pattern.hpp"

#include <gtest/gtest.h>

namespace anyblock::core {
namespace {

Pattern small_complete() {
  // 2x3 block-cyclic over 6 nodes.
  Pattern p(2, 3, 6);
  for (std::int64_t i = 0; i < 2; ++i)
    for (std::int64_t j = 0; j < 3; ++j)
      p.set(i, j, static_cast<NodeId>(i * 3 + j));
  return p;
}

TEST(Pattern, ConstructionStartsFree) {
  Pattern p(2, 2, 3);
  EXPECT_EQ(p.free_cell_count(), 4);
  EXPECT_FALSE(p.is_complete());
}

TEST(Pattern, InvalidConstructionThrows) {
  EXPECT_THROW(Pattern(0, 2, 1), std::invalid_argument);
  EXPECT_THROW(Pattern(2, 0, 1), std::invalid_argument);
  EXPECT_THROW(Pattern(2, 2, 0), std::invalid_argument);
}

TEST(Pattern, SetRejectsBadValues) {
  Pattern p(2, 2, 3);
  EXPECT_THROW(p.set(2, 0, 0), std::out_of_range);
  EXPECT_THROW(p.set(0, 0, 3), std::out_of_range);
  EXPECT_THROW(p.set(0, 0, -2), std::out_of_range);
  p.set(0, 0, Pattern::kFree);  // sentinel accepted
}

TEST(Pattern, OwnerOfTileWrapsCyclically) {
  const Pattern p = small_complete();
  EXPECT_EQ(p.owner_of_tile(0, 0), 0);
  EXPECT_EQ(p.owner_of_tile(2, 3), 0);
  EXPECT_EQ(p.owner_of_tile(1, 2), 5);
  EXPECT_EQ(p.owner_of_tile(3, 5), 5);
  EXPECT_EQ(p.owner_of_tile(5, 7), 4);
}

TEST(Pattern, LoadsAndBalance) {
  const Pattern p = small_complete();
  const auto loads = p.node_loads();
  ASSERT_EQ(loads.size(), 6u);
  for (const auto load : loads) EXPECT_EQ(load, 1);
  EXPECT_TRUE(p.is_balanced());
}

TEST(Pattern, ImbalanceDetected) {
  Pattern p(2, 2, 2);
  p.set(0, 0, 0);
  p.set(0, 1, 0);
  p.set(1, 0, 0);
  p.set(1, 1, 1);
  EXPECT_FALSE(p.is_balanced());
  EXPECT_TRUE(p.is_balanced(2));
}

TEST(Pattern, DistinctCounts) {
  const Pattern p = small_complete();
  EXPECT_EQ(p.distinct_in_row(0), 3);
  EXPECT_EQ(p.distinct_in_row(1), 3);
  EXPECT_EQ(p.distinct_in_col(0), 2);
  EXPECT_DOUBLE_EQ(p.mean_row_distinct(), 3.0);
  EXPECT_DOUBLE_EQ(p.mean_col_distinct(), 2.0);
}

TEST(Pattern, DistinctWithRepeatedNodes) {
  Pattern p(1, 4, 2);
  p.set(0, 0, 0);
  p.set(0, 1, 1);
  p.set(0, 2, 0);
  p.set(0, 3, 1);
  EXPECT_EQ(p.distinct_in_row(0), 2);
}

TEST(Pattern, ColrowCountsOnSquarePattern) {
  // 3x3 pattern: colrow 0 = row 0 + column 0.
  Pattern p(3, 3, 4);
  // row 0: 0 1 2 / row 1: 1 3 0 / row 2: 2 0 3
  const NodeId cells[3][3] = {{0, 1, 2}, {1, 3, 0}, {2, 0, 3}};
  for (std::int64_t i = 0; i < 3; ++i)
    for (std::int64_t j = 0; j < 3; ++j) p.set(i, j, cells[i][j]);
  EXPECT_EQ(p.distinct_in_colrow(0), 3);  // row {0,1,2} + col {0,1,2}
  EXPECT_EQ(p.distinct_in_colrow(1), 3);  // row {1,3,0} + col {1,3,0}
  EXPECT_EQ(p.distinct_in_colrow(2), 3);  // row {2,0,3} + col {2,0,3}
  EXPECT_DOUBLE_EQ(p.mean_colrow_distinct(), 3.0);
}

TEST(Pattern, ColrowRequiresSquare) {
  const Pattern p = small_complete();
  EXPECT_THROW((void)p.distinct_in_colrow(0), std::logic_error);
}

TEST(Pattern, FreeDiagonalIgnoredInColrow) {
  Pattern p(2, 2, 2);
  p.set(0, 1, 0);
  p.set(1, 0, 1);
  // diagonal cells left free
  EXPECT_EQ(p.distinct_in_colrow(0), 2);
  EXPECT_EQ(p.distinct_in_colrow(1), 2);
  EXPECT_EQ(p.free_cell_count(), 2);
}

TEST(Pattern, ValidateDetectsFreeOffDiagonal) {
  Pattern p(2, 3, 6);  // rectangular: no free cell allowed anywhere
  for (std::int64_t i = 0; i < 2; ++i)
    for (std::int64_t j = 0; j < 3; ++j)
      p.set(i, j, static_cast<NodeId>(i * 3 + j));
  EXPECT_TRUE(p.validate().empty());
  p.set(0, 1, Pattern::kFree);
  EXPECT_FALSE(p.validate().empty());
}

TEST(Pattern, ValidateDetectsMissingNode) {
  Pattern p(2, 2, 4);
  p.set(0, 0, 0);
  p.set(0, 1, 1);
  p.set(1, 0, 2);
  p.set(1, 1, 2);  // node 3 never appears
  EXPECT_FALSE(p.validate().empty());
  p.set(1, 1, 3);
  EXPECT_TRUE(p.validate().empty());
}

TEST(Pattern, ValidateAcceptsFreeDiagonalOnSquare) {
  Pattern p(2, 2, 2);
  p.set(0, 1, 0);
  p.set(1, 0, 1);
  EXPECT_TRUE(p.validate().empty());
}

}  // namespace
}  // namespace anyblock::core
