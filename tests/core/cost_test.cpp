#include "core/cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "core/gcrm.hpp"
#include "core/sbc.hpp"

namespace anyblock::core {
namespace {

TEST(Cost, LuCostOf2dbc) {
  EXPECT_DOUBLE_EQ(lu_cost(make_2dbc(2, 3)), 5.0);
  EXPECT_DOUBLE_EQ(lu_cost(make_2dbc(4, 4)), 8.0);
  EXPECT_DOUBLE_EQ(lu_cost(make_2dbc(23, 1)), 24.0);
}

TEST(Cost, PredictedVolumesScaleWithTriangleNumbers) {
  const Pattern p = make_2dbc(2, 3);
  // Eq. 1 with T = 5: Q = t(t+1)/2 * 3.
  EXPECT_DOUBLE_EQ(predicted_lu_volume(p, 10), 55.0 * 3.0);
  EXPECT_DOUBLE_EQ(predicted_lu_volume(p, 1), 1.0 * 3.0);
  const Pattern s = make_2dbc(3, 3);
  // z-bar = 5 for a 3x3 grid; Eq. 2: Q = t(t+1)/2 * 4.
  EXPECT_DOUBLE_EQ(predicted_cholesky_volume(s, 10), 55.0 * 4.0);
}

TEST(Cost, ExactLuVolumeOnSingleNode) {
  // One node: no communication at all.
  const Pattern p = make_2dbc(1, 1);
  EXPECT_EQ(exact_lu_volume(p, 12), 0);
}

TEST(Cost, ExactLuVolumeTinyCaseByHand) {
  // 1x2 pattern over t = 2 tiles: nodes 0|1 own columns alternately.
  // Iteration 0: diag (0,0) owner 0 -> receivers {owner(0,1)=1, owner(1,0)=0}
  //   -> 1 send.  Panel (1,0) owner 0 -> row 1 right: owner(1,1)=1 -> 1.
  //   Panel (0,1) owner 1 -> column 1 below: owner(1,1)=1 -> 0.
  // Total = 2.
  const Pattern p = make_2dbc(1, 2);
  EXPECT_EQ(exact_lu_volume(p, 2), 2);
}

TEST(Cost, ExactMatchesPredictionAsymptotically) {
  // Eq. 1 neglects edge effects; the relative gap must shrink with t.
  const Pattern p = make_2dbc(3, 2);
  const double t_small = static_cast<double>(exact_lu_volume(p, 12));
  const double p_small = predicted_lu_volume(p, 12);
  const double t_large = static_cast<double>(exact_lu_volume(p, 96));
  const double p_large = predicted_lu_volume(p, 96);
  const double gap_small = std::abs(t_small - p_small) / p_small;
  const double gap_large = std::abs(t_large - p_large) / p_large;
  EXPECT_LT(gap_large, gap_small);
  EXPECT_LT(gap_large, 0.05);
}

TEST(Cost, ExactLuPrefersG2dbcForP23) {
  // The headline claim: for P = 23, G-2DBC generates far fewer
  // communications than the forced 23x1 2DBC.
  const std::int64_t t = 60;
  const std::int64_t vol_2dbc = exact_lu_volume(make_2dbc(23, 1), t);
  const std::int64_t vol_g2dbc = exact_lu_volume(make_g2dbc(23), t);
  EXPECT_LT(vol_g2dbc, vol_2dbc / 2);
}

TEST(Cost, ExactCholeskyVolumeOnSingleNode) {
  const Pattern p = make_2dbc(1, 1);
  EXPECT_EQ(exact_cholesky_volume(p, 12), 0);
}

TEST(Cost, ExactCholeskyMatchesPredictionAsymptotically) {
  const Pattern p = make_2dbc(3, 3);
  const double exact = static_cast<double>(exact_cholesky_volume(p, 90));
  const double predicted = predicted_cholesky_volume(p, 90);
  EXPECT_NEAR(exact / predicted, 1.0, 0.06);
}

TEST(Cost, ExactCholeskyPrefersSbcOver2dbc) {
  // SBC's design claim: strictly fewer communications than square 2DBC at
  // (nearly) the same node count.  P_sbc = 21 vs P_2dbc = 25.
  const std::int64_t t = 60;
  const double per_node_sbc =
      static_cast<double>(exact_cholesky_volume(make_sbc(21), t)) / 21.0;
  const double per_node_2dbc =
      static_cast<double>(exact_cholesky_volume(make_2dbc(5, 5), t)) / 25.0;
  EXPECT_LT(per_node_sbc, per_node_2dbc);
}

TEST(Cost, ExactCholeskyWorksWithFreeDiagonal) {
  // GCR&M patterns have free diagonals; the exact counter must bind them
  // through PatternDistribution without throwing.
  const GcrmResult result = gcrm_build(10, 5, 3);
  ASSERT_TRUE(result.valid);
  const std::int64_t vol = exact_cholesky_volume(result.pattern, 30);
  EXPECT_GT(vol, 0);
  const double predicted = predicted_cholesky_volume(result.pattern, 30);
  EXPECT_NEAR(static_cast<double>(vol) / predicted, 1.0, 0.35);
}

TEST(Cost, ExactLuRequiresCompletePattern) {
  const Pattern p = make_sbc(21);  // free diagonal
  EXPECT_THROW(exact_lu_volume(p, 10), std::invalid_argument);
}

TEST(Cost, CholeskyCostRequiresSquare) {
  EXPECT_THROW(cholesky_cost(make_2dbc(2, 3)), std::logic_error);
}

}  // namespace
}  // namespace anyblock::core
