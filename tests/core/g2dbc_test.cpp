#include "core/g2dbc.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/cost.hpp"

namespace anyblock::core {
namespace {

TEST(G2dbc, ParamsForPaperExample) {
  // Paper, Fig. 3: P = 10 gives a = 4, b = 3, c = 2.
  const G2dbcParams p = g2dbc_params(10);
  EXPECT_EQ(p.a, 4);
  EXPECT_EQ(p.b, 3);
  EXPECT_EQ(p.c, 2);
  EXPECT_FALSE(p.degenerate());
  EXPECT_EQ(p.pattern_rows(), 6);
  EXPECT_EQ(p.pattern_cols(), 10);
}

TEST(G2dbc, ParamsForExperimentalCases) {
  // Paper, Table Ia: pattern dimensions for the test cases.
  const struct {
    std::int64_t P, rows, cols;
  } cases[] = {{23, 20, 23}, {31, 30, 31}, {35, 30, 35}, {39, 30, 39}};
  for (const auto& c : cases) {
    const G2dbcParams p = g2dbc_params(c.P);
    EXPECT_EQ(p.pattern_rows(), c.rows) << "P=" << c.P;
    EXPECT_EQ(p.pattern_cols(), c.cols) << "P=" << c.P;
  }
}

TEST(G2dbc, DegeneratesToPlain2dbc) {
  // c = 0 exactly when P = p^2 or P = p(p+1) (paper, Section IV-B).
  for (const std::int64_t P : {1, 2, 4, 6, 9, 12, 16, 20, 25, 30, 36, 42}) {
    const G2dbcParams params = g2dbc_params(P);
    EXPECT_TRUE(params.degenerate()) << "P=" << P;
    const Pattern pattern = make_g2dbc(P);
    EXPECT_EQ(pattern.rows() * pattern.cols(), P);
    EXPECT_TRUE(pattern.is_balanced());
  }
}

TEST(G2dbc, IncompletePatternLayout) {
  const G2dbcParams params = g2dbc_params(10);
  const Pattern ip = g2dbc_incomplete_pattern(params);
  EXPECT_EQ(ip.rows(), 3);
  EXPECT_EQ(ip.cols(), 4);
  // Nodes 0..9 row-major; last c = 2 cells of the last row free.
  EXPECT_EQ(ip.at(0, 0), 0);
  EXPECT_EQ(ip.at(1, 3), 7);
  EXPECT_EQ(ip.at(2, 1), 9);
  EXPECT_EQ(ip.at(2, 2), Pattern::kFree);
  EXPECT_EQ(ip.at(2, 3), Pattern::kFree);
}

TEST(G2dbc, SubPatternFillsFromRowI) {
  const G2dbcParams params = g2dbc_params(10);
  const Pattern p1 = g2dbc_sub_pattern(params, 1);
  // Undefined cells take the last c elements of IP row 1, column-aligned.
  EXPECT_EQ(p1.at(2, 2), 2);
  EXPECT_EQ(p1.at(2, 3), 3);
  const Pattern p2 = g2dbc_sub_pattern(params, 2);
  EXPECT_EQ(p2.at(2, 2), 6);
  EXPECT_EQ(p2.at(2, 3), 7);
  EXPECT_THROW(g2dbc_sub_pattern(params, 0), std::out_of_range);
  EXPECT_THROW(g2dbc_sub_pattern(params, 3), std::out_of_range);
}

class G2dbcPropertyTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(G2dbcPropertyTest, BalancedLemma1) {
  const std::int64_t P = GetParam();
  const Pattern pattern = make_g2dbc(P);
  EXPECT_TRUE(pattern.validate().empty()) << pattern.validate();
  // Lemma 1: each node appears exactly b(b-1) times (or once if degenerate).
  const auto loads = pattern.node_loads();
  const std::int64_t expected = pattern.rows() * pattern.cols() / P;
  for (const auto load : loads) EXPECT_EQ(load, expected) << "P=" << P;
}

TEST_P(G2dbcPropertyTest, EveryRowHasExactlyADistinctNodes) {
  const std::int64_t P = GetParam();
  const G2dbcParams params = g2dbc_params(P);
  if (params.degenerate()) return;
  const Pattern pattern = make_g2dbc(P);
  for (std::int64_t i = 0; i < pattern.rows(); ++i)
    EXPECT_EQ(pattern.distinct_in_row(i), params.a) << "P=" << P << " i=" << i;
}

TEST_P(G2dbcPropertyTest, CostMatchesClosedForm) {
  const std::int64_t P = GetParam();
  const Pattern pattern = make_g2dbc(P);
  EXPECT_NEAR(lu_cost(pattern), g2dbc_cost_formula(P), 1e-9) << "P=" << P;
}

TEST_P(G2dbcPropertyTest, CostWithinLemma2Bound) {
  const std::int64_t P = GetParam();
  EXPECT_LE(g2dbc_cost_formula(P), g2dbc_cost_bound(P) + 1e-9) << "P=" << P;
}

INSTANTIATE_TEST_SUITE_P(AllP, G2dbcPropertyTest, ::testing::Range<std::int64_t>(1, 130));

TEST(G2dbc, CostForPaperTable) {
  // Table Ia reports T for the G-2DBC experimental patterns.  The closed
  // form (verified against the constructed pattern above) matches the
  // published values for P = 31, 35, 39; for P = 23 the paper prints 9.261
  // where the construction yields 107/23 + 5 = 9.652 (see EXPERIMENTS.md).
  EXPECT_NEAR(g2dbc_cost_formula(31), 11.194, 0.001);
  EXPECT_NEAR(g2dbc_cost_formula(35), 11.857, 0.001);
  EXPECT_NEAR(g2dbc_cost_formula(39), 12.615, 0.001);
  EXPECT_NEAR(g2dbc_cost_formula(23), 5.0 + 107.0 / 23.0, 1e-9);
}

TEST(G2dbc, InvalidP) {
  EXPECT_THROW(g2dbc_params(0), std::invalid_argument);
  EXPECT_THROW(make_g2dbc(-3), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::core
