#include "core/sbc.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/cost.hpp"

namespace anyblock::core {
namespace {

TEST(Sbc, FeasibleFamilies) {
  // Triangular a(a-1)/2: 1, 3, 6, 10, 15, 21, 28, 36, 45 ...
  // Half-square a^2/2 (a even): 2, 8, 18, 32, 50 ...
  for (const std::int64_t P : {1, 2, 3, 6, 8, 10, 15, 18, 21, 28, 32, 36, 45, 50}) {
    EXPECT_TRUE(sbc_feasible(P)) << P;
  }
  for (const std::int64_t P : {4, 5, 7, 9, 11, 12, 13, 14, 16, 17, 19, 20,
                               22, 23, 24, 25, 26, 27, 29, 30, 31, 33, 34, 35}) {
    EXPECT_FALSE(sbc_feasible(P)) << P;
  }
}

TEST(Sbc, ParamsIdentifyKind) {
  const auto t = sbc_params(21);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->kind, SbcKind::kTriangular);
  EXPECT_EQ(t->a, 7);
  EXPECT_DOUBLE_EQ(t->cost(), 6.0);

  const auto h = sbc_params(32);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->kind, SbcKind::kHalfSquare);
  EXPECT_EQ(h->a, 8);
  EXPECT_DOUBLE_EQ(h->cost(), 8.0);
}

TEST(Sbc, TriangularPatternStructure) {
  const Pattern p = make_sbc(21);  // a = 7
  EXPECT_EQ(p.rows(), 7);
  EXPECT_EQ(p.cols(), 7);
  EXPECT_TRUE(p.validate().empty());
  // Diagonal free; off-diagonal symmetric pair placement.
  for (std::int64_t i = 0; i < 7; ++i) {
    EXPECT_EQ(p.at(i, i), Pattern::kFree);
    for (std::int64_t j = 0; j < 7; ++j) {
      if (i != j) EXPECT_EQ(p.at(i, j), p.at(j, i));
    }
  }
  // Every pair node appears exactly twice.
  for (const auto load : p.node_loads()) EXPECT_EQ(load, 2);
}

TEST(Sbc, TriangularCostIsAMinusOne) {
  for (std::int64_t a = 2; a <= 14; ++a) {
    const std::int64_t P = a * (a - 1) / 2;
    const Pattern p = make_sbc(P);
    EXPECT_DOUBLE_EQ(cholesky_cost(p), static_cast<double>(a - 1))
        << "P=" << P;
  }
}

TEST(Sbc, HalfSquarePatternStructure) {
  const Pattern p = make_sbc(32);  // a = 8
  EXPECT_EQ(p.rows(), 8);
  EXPECT_TRUE(p.is_complete());
  EXPECT_TRUE(p.validate().empty());
  for (const auto load : p.node_loads()) EXPECT_EQ(load, 2);
  // Diagonal nodes pair up consecutive diagonal cells.
  EXPECT_EQ(p.at(0, 0), p.at(1, 1));
  EXPECT_EQ(p.at(2, 2), p.at(3, 3));
  EXPECT_NE(p.at(1, 1), p.at(2, 2));
}

TEST(Sbc, HalfSquareCostIsA) {
  for (std::int64_t a = 2; a <= 14; a += 2) {
    const std::int64_t P = a * a / 2;
    const Pattern p = make_sbc(P);
    EXPECT_DOUBLE_EQ(cholesky_cost(p), static_cast<double>(a)) << "P=" << P;
  }
}

TEST(Sbc, CostsTrackReferenceCurves) {
  // Basic ~ sqrt(2P); extended ~ sqrt(2P) - 0.5 (paper, Section V-B).
  for (std::int64_t a = 4; a <= 20; a += 2) {
    const std::int64_t P = a * a / 2;
    EXPECT_NEAR(make_sbc(P).mean_colrow_distinct(), sbc_cost_reference(P),
                1e-9);
  }
  for (std::int64_t a = 4; a <= 20; ++a) {
    const std::int64_t P = a * (a - 1) / 2;
    EXPECT_NEAR(make_sbc(P).mean_colrow_distinct(),
                sbc_extended_cost_reference(P), 0.13)
        << "P=" << P;
  }
}

TEST(Sbc, BestAtMostMatchesPaperTable1b) {
  // Table Ib: for P = 23, 31, 35, 39 the SBC fallbacks are 21 (7x7, T=6),
  // 28 (8x8, T=7), 32 (8x8, T=8), 36 (9x9, T=8).
  const struct {
    std::int64_t P, fallback, a;
    double T;
  } rows[] = {{23, 21, 7, 6}, {31, 28, 8, 7}, {35, 32, 8, 8}, {39, 36, 9, 8}};
  for (const auto& row : rows) {
    const SbcParams params = best_sbc_at_most(row.P);
    EXPECT_EQ(params.P, row.fallback) << "P=" << row.P;
    EXPECT_EQ(params.a, row.a) << "P=" << row.P;
    EXPECT_DOUBLE_EQ(params.cost(), row.T) << "P=" << row.P;
  }
}

TEST(Sbc, FeasibleValuesAscending) {
  const auto values = sbc_feasible_values(50);
  EXPECT_EQ(values.front(), 1);
  for (std::size_t k = 1; k < values.size(); ++k)
    EXPECT_LT(values[k - 1], values[k]);
  EXPECT_EQ(values.back(), 50);
}

TEST(Sbc, MakeThrowsOnInfeasible) {
  EXPECT_THROW(make_sbc(23), std::invalid_argument);
  EXPECT_THROW(make_sbc(0), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::core
