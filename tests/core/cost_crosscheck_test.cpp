// Cross-validation of the two independent exact-volume implementations:
// the Pattern counters (with the cyclic-periodicity shortcut) and the
// generic Distribution counters (no shortcut).  Any bookkeeping error in
// either would break the exact equality.
#include <gtest/gtest.h>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/gcrm.hpp"
#include "core/sbc.hpp"
#include "util/rng.hpp"

namespace anyblock::core {
namespace {

class LuCrosscheckTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(LuCrosscheckTest, PatternAndGenericCountersAgree) {
  const std::int64_t P = GetParam();
  const Pattern pattern = make_g2dbc(P);
  for (const std::int64_t t : {5, 13, 24, 40}) {
    const PatternDistribution dist(pattern, t, /*symmetric=*/false);
    EXPECT_EQ(exact_lu_volume(pattern, t), exact_lu_volume(dist, t))
        << "P=" << P << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, LuCrosscheckTest,
                         ::testing::Values(1, 2, 3, 5, 7, 10, 13, 17, 23));

class CholCrosscheckTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CholCrosscheckTest, PatternAndGenericCountersAgree) {
  const std::int64_t P = GetParam();
  const Pattern pattern = make_sbc(P);
  for (const std::int64_t t : {5, 13, 24, 40}) {
    const PatternDistribution dist(pattern, t, /*symmetric=*/true);
    EXPECT_EQ(exact_cholesky_volume(pattern, t),
              exact_cholesky_volume(dist, t))
        << "P=" << P << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, CholCrosscheckTest,
                         ::testing::Values(1, 3, 6, 8, 10, 15, 18, 21, 28));

TEST(CostCrosscheck, GcrmPatternsAgreeToo) {
  for (const std::uint64_t seed : {0ULL, 1ULL, 2ULL}) {
    const GcrmResult result = gcrm_build(11, 6, seed);
    if (!result.valid) continue;
    const std::int64_t t = 20;
    const PatternDistribution dist(result.pattern, t, true);
    EXPECT_EQ(exact_cholesky_volume(result.pattern, t),
              exact_cholesky_volume(dist, t));
  }
}

TEST(CostCrosscheck, RandomExplicitDistributionsAreCountable) {
  // The generic counter accepts arbitrary owner maps — fuzz it for crashes
  // and basic sanity (volume bounded by tiles * (P-1) senders-receivers).
  Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    const std::int64_t t = 8;
    const std::int64_t P = 1 + static_cast<std::int64_t>(rng.below(6));
    std::vector<NodeId> owners(static_cast<std::size_t>(t * t));
    for (auto& o : owners) o = static_cast<NodeId>(rng.below(
        static_cast<std::uint64_t>(P)));
    const ExplicitDistribution dist(std::move(owners), t, P);
    const std::int64_t lu = exact_lu_volume(dist, t);
    const std::int64_t chol = exact_cholesky_volume(dist, t);
    EXPECT_GE(lu, 0);
    EXPECT_GE(chol, 0);
    EXPECT_LE(lu, t * t * (P - 1) * 2);
    EXPECT_LE(chol, t * t * (P - 1));
    if (P == 1) {
      EXPECT_EQ(lu, 0);
      EXPECT_EQ(chol, 0);
    }
  }
}

TEST(CostCrosscheck, Eq1ConvergesToExactCount) {
  // The relative gap between Eq. 1 and the exact count shrinks like 1/t.
  const Pattern pattern = make_g2dbc(10);
  double previous_gap = 1e9;
  for (const std::int64_t t : {12, 24, 48, 96}) {
    const double exact = static_cast<double>(exact_lu_volume(pattern, t));
    const double predicted = predicted_lu_volume(pattern, t);
    const double gap = std::abs(exact - predicted) / predicted;
    EXPECT_LT(gap, previous_gap * 1.01) << "t=" << t;
    previous_gap = gap;
  }
  EXPECT_LT(previous_gap, 0.05);
}

}  // namespace
}  // namespace anyblock::core
