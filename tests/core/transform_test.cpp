#include "core/transform.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/gcrm.hpp"
#include "core/sbc.hpp"

namespace anyblock::core {
namespace {

TEST(Transform, TransposeSwapsDims) {
  const Pattern p = make_2dbc(2, 3);
  const Pattern pt = transposed(p);
  EXPECT_EQ(pt.rows(), 3);
  EXPECT_EQ(pt.cols(), 2);
  EXPECT_EQ(pt.at(2, 1), p.at(1, 2));
  EXPECT_EQ(transposed(pt), p);  // involution
}

TEST(Transform, TransposePreservesLuCost) {
  for (const Pattern& p :
       {make_2dbc(4, 3), make_g2dbc(23), make_g2dbc(10)}) {
    EXPECT_DOUBLE_EQ(lu_cost(transposed(p)), lu_cost(p));
  }
}

TEST(Transform, TransposePreservesCholeskyCostOnSquare) {
  for (const Pattern& p : {make_sbc(21), make_sbc(32), make_2dbc(4, 4)}) {
    EXPECT_DOUBLE_EQ(cholesky_cost(transposed(p)), cholesky_cost(p));
  }
}

TEST(Transform, CanonicalRelabelIsIdempotent) {
  const Pattern p = make_g2dbc(13);
  const Pattern c = canonical_relabel(p);
  EXPECT_EQ(canonical_relabel(c), c);
  EXPECT_TRUE(c.validate().empty());
}

TEST(Transform, RelabelPreservesCosts) {
  const Pattern p = make_sbc(21);
  const Pattern c = canonical_relabel(p);
  EXPECT_DOUBLE_EQ(cholesky_cost(c), cholesky_cost(p));
  EXPECT_EQ(c.free_cell_count(), p.free_cell_count());
  const auto a = p.node_loads();
  auto la = a;
  auto lc = c.node_loads();
  std::sort(la.begin(), la.end());
  std::sort(lc.begin(), lc.end());
  EXPECT_EQ(la, lc);  // load multiset preserved
}

TEST(Transform, EquivalenceDetectsRenaming) {
  // Swap two node ids in a 2DBC grid: still equivalent.
  Pattern p = make_2dbc(2, 2);
  Pattern q = p;
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 2; ++j) {
      if (p.at(i, j) == 1) q.set(i, j, 2);
      else if (p.at(i, j) == 2) q.set(i, j, 1);
    }
  }
  EXPECT_FALSE(p == q);
  EXPECT_TRUE(equivalent_up_to_relabel(p, q));
}

TEST(Transform, EquivalenceRejectsDifferentStructure) {
  EXPECT_FALSE(equivalent_up_to_relabel(make_2dbc(2, 3), make_2dbc(3, 2)));
  EXPECT_FALSE(equivalent_up_to_relabel(make_2dbc(2, 2), make_2dbc(2, 3)));
  // Same shape, same node count, different placement structure.
  Pattern a(2, 2, 2);
  a.set(0, 0, 0);
  a.set(0, 1, 0);
  a.set(1, 0, 1);
  a.set(1, 1, 1);
  Pattern b(2, 2, 2);
  b.set(0, 0, 0);
  b.set(0, 1, 1);
  b.set(1, 0, 1);
  b.set(1, 1, 0);
  EXPECT_FALSE(equivalent_up_to_relabel(a, b));
}

TEST(Transform, GcrmSeedsProduceInequivalentPatterns) {
  // Fig. 9's spread comes from genuinely different structures, not just
  // node renamings.
  const GcrmResult a = gcrm_build(23, 14, 1);
  const GcrmResult b = gcrm_build(23, 14, 2);
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_FALSE(equivalent_up_to_relabel(a.pattern, b.pattern));
}

// ---------------------------------------------------------------------------
// 2.5D layer morphs (core/replicated.hpp companions).

TEST(Transform25d, LayerPatternRoundTripsToTheBase) {
  // Morphing a 2.5D layer pattern back onto the base node space is the
  // identity on ownership — for every layer, including free diagonal cells
  // (the GCR&M case).
  const GcrmResult gcrm = gcrm_build(6, 4, 2);
  ASSERT_TRUE(gcrm.valid);
  for (const Pattern& base :
       {make_g2dbc(23), make_2dbc(4, 3), gcrm.pattern}) {
    for (const std::int64_t layers : {1, 2, 4}) {
      for (std::int64_t q = 0; q < layers; ++q) {
        const Pattern lifted = layer_pattern(base, q, layers);
        EXPECT_EQ(lifted.num_nodes(), base.num_nodes() * layers);
        EXPECT_EQ(lifted.free_cell_count(), base.free_cell_count());
        EXPECT_EQ(project_to_base(lifted, base.num_nodes()), base) << q;
      }
    }
  }
}

TEST(Transform25d, LayerPatternsAreRelabelingsOfEachOther) {
  // Every layer presents the same structure under different node names, so
  // the cost metric is layer-invariant.
  const Pattern base = make_g2dbc(13);
  const Pattern l0 = layer_pattern(base, 0, 3);
  const Pattern l2 = layer_pattern(base, 2, 3);
  EXPECT_TRUE(equivalent_up_to_relabel(l0, l2));
  EXPECT_DOUBLE_EQ(lu_cost(l0), lu_cost(base));
  EXPECT_DOUBLE_EQ(lu_cost(l2), lu_cost(base));
}

TEST(Transform25d, LayerZeroOfOneLayerIsTheBaseItself) {
  const Pattern base = make_2dbc(3, 4);
  EXPECT_EQ(layer_pattern(base, 0, 1), base);
}

TEST(Transform25d, RejectsBadLayerArguments) {
  const Pattern base = make_2dbc(2, 2);
  EXPECT_THROW(layer_pattern(base, 0, 0), std::invalid_argument);
  EXPECT_THROW(layer_pattern(base, 2, 2), std::invalid_argument);
  EXPECT_THROW(layer_pattern(base, -1, 2), std::invalid_argument);
  EXPECT_THROW(project_to_base(base, 0), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::core
