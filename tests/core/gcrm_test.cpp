#include "core/gcrm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/cost.hpp"
#include "util/math.hpp"

namespace anyblock::core {
namespace {

TEST(Gcrm, FeasibilityEquation3) {
  // Eq. 3: ceil(r(r-1)/P) <= r^2/P, plus r(r-1) >= P.
  EXPECT_TRUE(gcrm_feasible(23, 22));   // the paper's P = 23 winner size
  EXPECT_TRUE(gcrm_feasible(31, 31));
  EXPECT_FALSE(gcrm_feasible(23, 4));   // r(r-1) = 12 < 23
  EXPECT_FALSE(gcrm_feasible(10, 1));
  EXPECT_FALSE(gcrm_feasible(0, 5));
  // r = 7, P = 23: ceil(42/23) = 2 and 2*23 = 46 <= 49 -> feasible.
  EXPECT_TRUE(gcrm_feasible(23, 7));
  // r = 8, P = 23: ceil(56/23) = 3 and 3*23 = 69 > 64 -> Eq. 3 fails.
  EXPECT_FALSE(gcrm_feasible(23, 8));
}

TEST(Gcrm, FeasibilityMatchesDirectCheck) {
  for (std::int64_t P = 2; P <= 40; ++P) {
    for (std::int64_t r = 2; r <= 40; ++r) {
      const bool eq3 = ceil_div(r * (r - 1), P) * P <= r * r;
      const bool expected = eq3 && r * (r - 1) >= P;
      EXPECT_EQ(gcrm_feasible(P, r), expected) << "P=" << P << " r=" << r;
    }
  }
}

TEST(Gcrm, BuildThrowsWhenInfeasible) {
  EXPECT_THROW(gcrm_build(23, 8, 0), std::invalid_argument);
}

TEST(Gcrm, Deterministic) {
  const GcrmResult a = gcrm_build(23, 10, 77);
  const GcrmResult b = gcrm_build(23, 10, 77);
  EXPECT_EQ(a.pattern, b.pattern);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(Gcrm, SeedsChangeTheResult) {
  // Random tie-breaking must actually influence the construction
  // (paper, Fig. 9 shows seed-to-seed variance).
  bool any_different = false;
  const GcrmResult base = gcrm_build(23, 14, 0);
  for (std::uint64_t seed = 1; seed < 8 && !any_different; ++seed)
    any_different = !(gcrm_build(23, 14, seed).pattern == base.pattern);
  EXPECT_TRUE(any_different);
}

struct GcrmCase {
  std::int64_t P;
  std::int64_t r;
};

class GcrmPropertyTest : public ::testing::TestWithParam<GcrmCase> {};

TEST_P(GcrmPropertyTest, InvariantsHold) {
  const auto [P, r] = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const GcrmResult result = gcrm_build(P, r, seed);
    ASSERT_TRUE(result.valid)
        << "P=" << P << " r=" << r << ": " << result.pattern.validate();
    const Pattern& p = result.pattern;
    EXPECT_EQ(p.rows(), r);
    EXPECT_TRUE(p.is_square());
    // Diagonal stays free; all off-diagonal cells assigned.
    for (std::int64_t i = 0; i < r; ++i) {
      EXPECT_EQ(p.at(i, i), Pattern::kFree);
      for (std::int64_t j = 0; j < r; ++j)
        if (i != j) EXPECT_NE(p.at(i, j), Pattern::kFree);
    }
    // Every cell's owner holds both colrows of the cell.
    for (std::int64_t i = 0; i < r; ++i) {
      for (std::int64_t j = 0; j < r; ++j) {
        if (i == j) continue;
        const NodeId owner = p.at(i, j);
        const auto& rows = result.colrows_per_node[static_cast<std::size_t>(owner)];
        const bool has_i = std::find(rows.begin(), rows.end(),
                                     static_cast<std::int32_t>(i)) != rows.end();
        const bool has_j = std::find(rows.begin(), rows.end(),
                                     static_cast<std::int32_t>(j)) != rows.end();
        EXPECT_TRUE(has_i && has_j) << "cell (" << i << "," << j << ")";
      }
    }
    // Accounting: every off-diagonal cell assigned by exactly one phase.
    EXPECT_EQ(result.cells_matched_round1 + result.cells_matched_round2 +
                  result.cells_fallback,
              r * (r - 1));
    // Matching rounds cap loads at ceil(r(r-1)/P); the fallback may exceed
    // it only for cells nothing else could take.
    if (result.cells_fallback == 0) {
      const std::int64_t cap = ceil_div(r * (r - 1), P);
      for (const auto load : p.node_loads()) EXPECT_LE(load, cap);
    }
    // Cost is at least the trivial bound (some node is on >= 1 colrow...
    // every colrow holds at least one node, so z-bar >= 1).
    EXPECT_GE(result.cost, 1.0);
    EXPECT_LE(result.cost, static_cast<double>(2 * r - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GcrmPropertyTest,
    ::testing::Values(GcrmCase{5, 4}, GcrmCase{10, 5}, GcrmCase{23, 10},
                      GcrmCase{23, 14}, GcrmCase{23, 22}, GcrmCase{31, 31},
                      GcrmCase{35, 35}, GcrmCase{17, 18}, GcrmCase{7, 7},
                      GcrmCase{50, 25}, GcrmCase{13, 26}));

TEST(Gcrm, ReasonableCostForPaperCase) {
  // Paper, Table Ib: GCR&M reaches T = 6.045 at 22x22 for P = 23.  A single
  // seed will not necessarily match, but must land clearly below the 2DBC
  // symmetric cost (~2 sqrt(P) - 1 ~ 8.6) on at least one of a few seeds.
  double best = 1e9;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const GcrmResult result = gcrm_build(23, 22, seed);
    if (result.valid) best = std::min(best, result.cost);
  }
  EXPECT_LT(best, 7.5);
}

TEST(Gcrm, SmallestCases) {
  // P = 2, r = 2: one node covers the single pair {0,1} in phase 1, takes
  // one cell in matching round 1, and the greedy fallback hands the second
  // cell to the other node (adding the missing colrow) — valid and balanced.
  const GcrmResult tiny = gcrm_build(2, 2, 1);
  EXPECT_TRUE(tiny.valid);
  EXPECT_TRUE(tiny.pattern.is_balanced());
  EXPECT_EQ(tiny.cells_fallback, 1);

  // At r = 3 a valid balanced pattern exists for P = 2.
  bool found = false;
  for (std::uint64_t seed = 0; seed < 10 && !found; ++seed) {
    const GcrmResult result = gcrm_build(2, 3, seed);
    found = result.valid && result.pattern.is_balanced(1);
  }
  EXPECT_TRUE(found);
}

TEST(Gcrm, LargeSideFailsLoudlyNotSilently) {
  // Beyond kGcrmMaxSide the 32-bit matching-vertex arithmetic could wrap;
  // the build must refuse with a message naming the limit, never produce a
  // quietly corrupted pattern.
  EXPECT_GT(kGcrmMaxSide * (kGcrmMaxSide - 1),
            std::int64_t{0});  // itself overflow-free
  try {
    gcrm_build(1000, 50'000, 1);
    FAIL() << "expected gcrm_build to throw for r > kGcrmMaxSide";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("46340"), std::string::npos)
        << e.what();
  }
}

TEST(Gcrm, FeasibilityGuardsAgainstOverflow) {
  // Eq. 3's ceil(r(r-1)/P) * P must not wrap for absurd r; the guard
  // reports infeasible instead of invoking signed-overflow UB.
  EXPECT_FALSE(gcrm_feasible(3, std::int64_t{3'000'000'000}));
  EXPECT_FALSE(gcrm_feasible(3, std::numeric_limits<std::int64_t>::max()));
  // Near the guard boundary the answer is still computed, not crashed.
  EXPECT_TRUE(gcrm_feasible(2, 2'000'000'000) ||
              !gcrm_feasible(2, 2'000'000'000));
}

TEST(Gcrm, AbandonControlsMatchUnabandonedBuild) {
  // With a threshold no attempt can beat, the build flags `abandoned` and
  // stops early; with an infinite threshold the result is bit-identical to
  // the plain build.
  GcrmBuildControls relaxed;
  const GcrmResult plain = gcrm_build(23, 24, 7);
  const GcrmResult instrumented = gcrm_build(23, 24, 7, relaxed);
  ASSERT_EQ(plain.valid, instrumented.valid);
  EXPECT_FALSE(instrumented.abandoned);
  EXPECT_EQ(plain.pattern, instrumented.pattern);

  GcrmBuildControls harsh;
  harsh.abandon_above = 0.0;  // any committed incidence exceeds this
  const GcrmResult abandoned = gcrm_build(23, 24, 7, harsh);
  EXPECT_TRUE(abandoned.abandoned);
  EXPECT_FALSE(abandoned.valid);
}

TEST(Gcrm, BuildTimingsAccumulatePerPhase) {
  GcrmBuildTimings timings;
  GcrmBuildControls controls;
  controls.timings = &timings;
  const GcrmResult result = gcrm_build(23, 24, 7, controls);
  ASSERT_TRUE(result.valid);
  EXPECT_GE(timings.phase1_seconds, 0.0);
  EXPECT_GE(timings.covers_seconds, 0.0);
  EXPECT_GE(timings.match_seconds, 0.0);
  EXPECT_GE(timings.fallback_seconds, 0.0);
  EXPECT_GE(timings.finalize_seconds, 0.0);
  // A second build adds on top instead of resetting.
  const double after_one = timings.phase1_seconds;
  gcrm_build(23, 24, 8, controls);
  EXPECT_GE(timings.phase1_seconds, after_one);
}

}  // namespace
}  // namespace anyblock::core
