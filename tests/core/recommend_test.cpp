#include "core/recommend.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/sbc.hpp"

namespace anyblock::core {
namespace {

RecommendOptions fast_options() {
  RecommendOptions options;
  options.search.seeds = 10;
  return options;
}

TEST(Recommend, LuPicksPlain2dbcWhenDegenerate) {
  for (const std::int64_t P : {4, 6, 12, 16, 20, 36}) {
    const Recommendation rec = recommend_pattern(P, Kernel::kLu);
    EXPECT_EQ(rec.scheme, "2DBC") << P;
    EXPECT_EQ(rec.pattern.rows() * rec.pattern.cols(), P);
  }
}

TEST(Recommend, LuPicksG2dbcForAwkwardCounts) {
  for (const std::int64_t P : {23, 31, 39, 47}) {
    const Recommendation rec = recommend_pattern(P, Kernel::kLu);
    EXPECT_EQ(rec.scheme, "G-2DBC") << P;
    EXPECT_EQ(rec.pattern.num_nodes(), P);
    EXPECT_LE(rec.cost, g2dbc_cost_bound(P));
    EXPECT_FALSE(rec.rationale.empty());
  }
}

TEST(Recommend, CholeskyAtSbcFeasibleCountsNeverWorseThanSbc) {
  // At SBC-feasible P the recommendation is SBC — unless the GCR&M search
  // finds something strictly cheaper, which the paper observes it often
  // does ("cost either similar to SBC, or even lower in many cases").
  for (const std::int64_t P : {21, 28, 32, 36}) {
    const Recommendation rec =
        recommend_pattern(P, Kernel::kCholesky, fast_options());
    EXPECT_TRUE(rec.scheme == "SBC" || rec.scheme == "GCR&M") << P;
    EXPECT_LE(rec.cost, sbc_params(P)->cost()) << P;
    if (rec.scheme == "SBC")
      EXPECT_DOUBLE_EQ(rec.cost, sbc_params(P)->cost());
  }
}

TEST(Recommend, CholeskyPicksGcrmElsewhere) {
  for (const std::int64_t P : {23, 31, 35, 39}) {
    const Recommendation rec =
        recommend_pattern(P, Kernel::kCholesky, fast_options());
    EXPECT_EQ(rec.scheme, "GCR&M") << P;
    EXPECT_EQ(rec.pattern.num_nodes(), P);
    // GCR&M must land at or below the SBC reference curve (plus slack for
    // the reduced seed count).
    EXPECT_LT(rec.cost, sbc_cost_reference(P) + 1.0);
  }
}

TEST(Recommend, SyrkUsesTheSymmetricPath) {
  const Recommendation chol =
      recommend_pattern(21, Kernel::kCholesky, fast_options());
  const Recommendation syrk =
      recommend_pattern(21, Kernel::kSyrk, fast_options());
  EXPECT_EQ(chol.scheme, syrk.scheme);
  EXPECT_DOUBLE_EQ(chol.cost, syrk.cost);
}

TEST(Recommend, PatternsAreUsable) {
  for (const std::int64_t P : {10, 23}) {
    for (const Kernel kernel : {Kernel::kLu, Kernel::kCholesky}) {
      const Recommendation rec =
          recommend_pattern(P, kernel, fast_options());
      EXPECT_TRUE(rec.pattern.validate().empty());
      EXPECT_TRUE(rec.pattern.is_balanced(1));
    }
  }
}

TEST(Recommend, RejectsBadP) {
  EXPECT_THROW(recommend_pattern(0, Kernel::kLu), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::core
