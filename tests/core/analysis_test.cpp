#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/gcrm.hpp"
#include "core/sbc.hpp"

namespace anyblock::core {
namespace {

TEST(Analysis, LuProfileTotalsMatchExactVolume) {
  for (const auto& pattern :
       {make_2dbc(2, 3), make_2dbc(5, 1), make_g2dbc(10)}) {
    const std::int64_t t = 18;
    const CommProfile profile = lu_comm_profile(pattern, t);
    EXPECT_EQ(profile.total(), exact_lu_volume(pattern, t));
    std::int64_t node_sum = 0;
    for (const auto v : profile.per_node_sent) node_sum += v;
    EXPECT_EQ(node_sum, profile.total());
  }
}

TEST(Analysis, CholeskyProfileTotalsMatchExactVolume) {
  for (const auto& pattern : {make_2dbc(3, 3), make_sbc(6), make_sbc(8)}) {
    const std::int64_t t = 18;
    const CommProfile profile = cholesky_comm_profile(pattern, t);
    EXPECT_EQ(profile.total(), exact_cholesky_volume(pattern, t));
  }
}

TEST(Analysis, PerIterationShrinksAtTheTail) {
  // Domain shrinking (Section III): the last iterations generate fewer
  // sends than the steady state, and iteration t-1 generates none.
  const Pattern pattern = make_2dbc(3, 3);
  const std::int64_t t = 24;
  const CommProfile profile = lu_comm_profile(pattern, t);
  ASSERT_EQ(profile.per_iteration.size(), static_cast<std::size_t>(t));
  EXPECT_EQ(profile.per_iteration.back(), 0);
  EXPECT_LT(profile.per_iteration[static_cast<std::size_t>(t - 2)],
            profile.per_iteration[0]);
  // Early iterations decrease roughly linearly with the trailing size.
  EXPECT_GT(profile.per_iteration[0], profile.per_iteration[5]);
}

TEST(Analysis, SenderImbalanceNearOneForSquare2dbc) {
  // Square 2DBC: panel roles rotate across nodes, so senders are close to
  // balanced — not exactly, since only the three diagonal-cell nodes ever
  // broadcast the (l, l) tile.
  const CommProfile profile = lu_comm_profile(make_2dbc(3, 3), 30);
  EXPECT_NEAR(profile.sender_imbalance(), 1.0, 0.1);
  // A tall grid concentrates all row-broadcast traffic on one column of
  // nodes, so its imbalance is visibly worse.
  const CommProfile tall = lu_comm_profile(make_2dbc(9, 1), 27);
  EXPECT_GT(tall.sender_imbalance(), profile.sender_imbalance());
}

TEST(Analysis, TallGridConcentratesColumnTraffic) {
  // 23x1: the per-iteration profile is dominated by row broadcasts from
  // the single panel owner of each iteration; volume per iteration is
  // (t - l - 1) * 22-ish, much higher than for a square-ish grid.
  const std::int64_t t = 23;
  const CommProfile tall = lu_comm_profile(make_2dbc(23, 1), t);
  const CommProfile square = lu_comm_profile(make_2dbc(5, 4), t);
  EXPECT_GT(tall.per_iteration[0], 2 * square.per_iteration[0]);
}

TEST(Analysis, GcrmProfileWorksWithFreeDiagonal) {
  const GcrmResult result = gcrm_build(10, 5, 7);
  ASSERT_TRUE(result.valid);
  const CommProfile profile = cholesky_comm_profile(result.pattern, 20);
  EXPECT_EQ(profile.total(), exact_cholesky_volume(result.pattern, 20));
  EXPECT_GT(profile.total(), 0);
}

TEST(Analysis, LoadStatsBalancedFor2dbc) {
  const PatternDistribution dist(make_2dbc(4, 4), 32, false);
  const LoadStats stats = tile_load_stats(dist, 32, false);
  EXPECT_EQ(stats.min_tiles, stats.max_tiles);  // 32 divisible by 4
  EXPECT_DOUBLE_EQ(stats.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_tiles, 64.0);
}

TEST(Analysis, LoadStatsNearOneForLazyDiagonal) {
  const PatternDistribution dist(make_sbc(21), 70, true);
  const LoadStats stats = tile_load_stats(dist, 70, true);
  EXPECT_LT(stats.imbalance, 1.05);
  EXPECT_GT(stats.min_tiles, 0);
}

TEST(Analysis, ProfileRequiresCompleteOrSquare) {
  EXPECT_THROW(lu_comm_profile(make_sbc(21), 10), std::invalid_argument);
  EXPECT_THROW(cholesky_comm_profile(make_2dbc(2, 3), 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::core
