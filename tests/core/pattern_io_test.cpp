#include "core/pattern_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "core/sbc.hpp"

namespace anyblock::core {
namespace {

TEST(PatternIo, RenderCompletePattern) {
  const Pattern p = make_2dbc(2, 3);
  EXPECT_EQ(render_pattern(p), "0 1 2\n3 4 5\n");
}

TEST(PatternIo, RenderFreeCellsAsDots) {
  Pattern p(2, 2, 2);
  p.set(0, 1, 0);
  p.set(1, 0, 1);
  EXPECT_EQ(render_pattern(p), ". 0\n1 .\n");
}

TEST(PatternIo, RenderAlignsWideIds) {
  const Pattern p = make_2dbc(1, 12);
  const std::string text = render_pattern(p);
  EXPECT_NE(text.find(" 0"), std::string::npos);
  EXPECT_NE(text.find("11"), std::string::npos);
}

TEST(PatternIo, SerializeParseRoundTrip) {
  for (const Pattern& p :
       {make_2dbc(3, 4), make_g2dbc(23), make_sbc(21), make_sbc(32)}) {
    const std::string text = serialize_pattern(p);
    const auto parsed = parse_pattern_string(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
}

TEST(PatternIo, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_pattern_string("nonsense").has_value());
  EXPECT_FALSE(parse_pattern_string("pattern 2 2 2\n0 1\n").has_value());
  EXPECT_FALSE(parse_pattern_string("pattern 2 2 2\n0 1 5 0\n").has_value());
  EXPECT_FALSE(parse_pattern_string("pattern 0 2 2\n").has_value());
}

TEST(PatternIo, ParseReportsWhatWasMalformed) {
  const auto detail_of = [](const std::string& text) {
    std::istringstream in(text);
    std::string error;
    EXPECT_FALSE(parse_pattern(in, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
    return error;
  };
  EXPECT_NE(detail_of("").find("missing"), std::string::npos);
  EXPECT_NE(detail_of("nonsense 2 2 2\n0 1 0 1\n").find("header"),
            std::string::npos);
  EXPECT_NE(detail_of("pattern 2 banana 2\n").find("dimensions"),
            std::string::npos);
  EXPECT_NE(detail_of("pattern 2 2 2\n0 1 0\n").find("truncated"),
            std::string::npos);
  EXPECT_NE(detail_of("pattern 2 2 2\n0 1 0 7\n").find("node id"),
            std::string::npos);
}

TEST(PatternIo, ParseRejectsImplausibleGeometry) {
  // A giant header must fail cleanly, not attempt a terabyte allocation
  // or overflow rows*cols.
  EXPECT_FALSE(parse_pattern_string("pattern 99999999999 9 9\n").has_value());
  EXPECT_FALSE(
      parse_pattern_string("pattern 9999999 9999999 4\n").has_value());
  EXPECT_FALSE(parse_pattern_string("pattern -3 2 2\n").has_value());
  // More nodes than cells can never label a complete pattern.
  EXPECT_FALSE(parse_pattern_string("pattern 2 2 9\n0 1 2 3\n").has_value());
}

TEST(PatternIo, ParseSurvivesFuzzedMutations) {
  // Deterministic fuzz-ish sweep: truncations and single-byte corruptions
  // of a valid record must either parse to a valid pattern or fail with a
  // non-empty diagnostic — never crash or return a malformed Pattern.
  // (A successful parse of a mutated record may still be an *invalid*
  // pattern — the parser guarantees syntax and per-cell range, and the
  // caller runs Pattern::validate(); here we only require sane geometry.)
  const auto check = [](const std::string& text, const char* what) {
    std::istringstream in(text);
    std::string error;
    const auto parsed = parse_pattern(in, &error);
    if (parsed.has_value()) {
      EXPECT_GT(parsed->rows(), 0) << what;
      EXPECT_LE(parsed->rows() * parsed->cols(), kMaxPatternCells) << what;
    } else {
      EXPECT_FALSE(error.empty()) << what;
    }
  };
  const std::string good = serialize_pattern(make_g2dbc(10));
  for (std::size_t cut = 0; cut < good.size(); ++cut)
    check(good.substr(0, cut), "truncation");
  for (const char garbage : {'x', '-', '\0', '9'}) {
    for (std::size_t at = 0; at < good.size(); at += 3) {
      std::string mutated = good;
      mutated[at] = garbage;
      check(mutated, "mutation");
    }
  }
}

TEST(PatternIo, LoadPatternFileThrowsWithPath) {
  const std::string missing = ::testing::TempDir() + "/does_not_exist.pat";
  try {
    (void)load_pattern_file(missing);
    FAIL() << "expected PatternIoError";
  } catch (const PatternIoError& e) {
    EXPECT_EQ(e.path(), missing);
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos);
  }

  const std::string corrupt = ::testing::TempDir() + "/corrupt.pat";
  {
    std::ofstream out(corrupt);
    out << "pattern 2 2 2\n0 1\n";  // truncated cells
  }
  try {
    (void)load_pattern_file(corrupt);
    FAIL() << "expected PatternIoError";
  } catch (const PatternIoError& e) {
    EXPECT_EQ(e.path(), corrupt);
    EXPECT_FALSE(e.detail().empty());
  }
  std::remove(corrupt.c_str());
}

TEST(PatternIo, DatabaseStrictLoadNamesTheProblem) {
  const std::string path = ::testing::TempDir() + "/strict_db.txt";
  {
    std::ofstream out(path);
    out << "P 23 nonsym\npattern 2 2 2\n0 1 0 banana\n";
  }
  PatternDatabase db;
  EXPECT_FALSE(db.load_file(path));
  EXPECT_THROW(db.load_file_strict(path), PatternIoError);
  EXPECT_EQ(db.size(), 0u);
  std::remove(path.c_str());
}

TEST(PatternIo, DatabaseRoundTrip) {
  PatternDatabase db;
  db.put(23, PatternDatabase::Kind::kNonSymmetric, make_g2dbc(23));
  db.put(21, PatternDatabase::Kind::kSymmetric, make_sbc(21));
  db.put(16, PatternDatabase::Kind::kNonSymmetric, make_2dbc(4, 4));
  EXPECT_EQ(db.size(), 3u);

  std::stringstream stream;
  db.save(stream);
  PatternDatabase loaded;
  ASSERT_TRUE(loaded.load(stream));
  EXPECT_EQ(loaded.size(), 3u);
  const auto g = loaded.get(23, PatternDatabase::Kind::kNonSymmetric);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, make_g2dbc(23));
  const auto s = loaded.get(21, PatternDatabase::Kind::kSymmetric);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, make_sbc(21));
  EXPECT_FALSE(
      loaded.get(23, PatternDatabase::Kind::kSymmetric).has_value());
}

TEST(PatternIo, DatabaseKindsAreSeparate) {
  PatternDatabase db;
  db.put(21, PatternDatabase::Kind::kNonSymmetric, make_2dbc(7, 3));
  db.put(21, PatternDatabase::Kind::kSymmetric, make_sbc(21));
  EXPECT_EQ(db.get(21, PatternDatabase::Kind::kNonSymmetric)->rows(), 7);
  EXPECT_EQ(db.get(21, PatternDatabase::Kind::kSymmetric)->rows(), 7);
  EXPECT_NE(*db.get(21, PatternDatabase::Kind::kNonSymmetric),
            *db.get(21, PatternDatabase::Kind::kSymmetric));
}

TEST(PatternIo, DatabaseLoadFailureLeavesEmpty) {
  PatternDatabase db;
  db.put(5, PatternDatabase::Kind::kNonSymmetric, make_2dbc(5, 1));
  std::stringstream bad("garbage");
  EXPECT_FALSE(db.load(bad));
  EXPECT_EQ(db.size(), 0u);
}

TEST(PatternIo, DatabaseFileRoundTrip) {
  PatternDatabase db;
  db.put(10, PatternDatabase::Kind::kNonSymmetric, make_g2dbc(10));
  const std::string path = ::testing::TempDir() + "/anyblock_db_test.txt";
  ASSERT_TRUE(db.save_file(path));
  PatternDatabase loaded;
  ASSERT_TRUE(loaded.load_file(path));
  EXPECT_EQ(loaded.size(), 1u);
  std::remove(path.c_str());
}

TEST(PatternIo, DatabaseOverwrite) {
  PatternDatabase db;
  db.put(4, PatternDatabase::Kind::kNonSymmetric, make_2dbc(4, 1));
  db.put(4, PatternDatabase::Kind::kNonSymmetric, make_2dbc(2, 2));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.get(4, PatternDatabase::Kind::kNonSymmetric)->rows(), 2);
}

}  // namespace
}  // namespace anyblock::core
