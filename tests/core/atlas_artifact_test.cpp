// Validates the shipped pattern database (data/pattern_atlas.db): loadable,
// complete over its advertised range, and containing only valid balanced
// patterns with costs inside the theoretical envelopes.  Skips cleanly when
// the artifact is absent (e.g. a source-only checkout).
#include <gtest/gtest.h>

#include <fstream>

#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/pattern_io.hpp"

namespace anyblock::core {
namespace {

constexpr char kAtlasPath[] = "data/pattern_atlas.db";
constexpr std::int64_t kMinP = 2;
constexpr std::int64_t kMaxP = 64;

/// The test binary runs from the build tree; look for the artifact relative
/// to a few plausible roots.
std::string find_atlas() {
  for (const char* prefix : {"", "../", "../../", "/root/repo/"}) {
    const std::string path = std::string(prefix) + kAtlasPath;
    if (std::ifstream(path).good()) return path;
  }
  return {};
}

TEST(AtlasArtifact, LoadsAndCoversItsRange) {
  const std::string path = find_atlas();
  if (path.empty()) GTEST_SKIP() << "data/pattern_atlas.db not present";
  PatternDatabase db;
  ASSERT_TRUE(db.load_file(path));
  EXPECT_EQ(db.size(), static_cast<std::size_t>(2 * (kMaxP - kMinP + 1)));
  for (std::int64_t P = kMinP; P <= kMaxP; ++P) {
    SCOPED_TRACE(P);
    const auto nonsym = db.get(P, PatternDatabase::Kind::kNonSymmetric);
    ASSERT_TRUE(nonsym.has_value());
    EXPECT_EQ(nonsym->num_nodes(), P);
    EXPECT_TRUE(nonsym->validate().empty());
    EXPECT_TRUE(nonsym->is_balanced());
    EXPECT_LE(lu_cost(*nonsym), g2dbc_cost_bound(P) + 1e-9);

    const auto sym = db.get(P, PatternDatabase::Kind::kSymmetric);
    ASSERT_TRUE(sym.has_value());
    EXPECT_EQ(sym->num_nodes(), P);
    EXPECT_TRUE(sym->is_square());
    EXPECT_TRUE(sym->validate().empty());
    EXPECT_TRUE(sym->is_balanced(1));
    // Symmetric winners sit at or below the SBC reference, within rounding.
    EXPECT_LE(cholesky_cost(*sym), sbc_cost_reference(P) + 1.0);
  }
}

}  // namespace
}  // namespace anyblock::core
