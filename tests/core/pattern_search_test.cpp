#include "core/pattern_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/sbc.hpp"

namespace anyblock::core {
namespace {

GcrmSearchOptions fast_options() {
  GcrmSearchOptions options;
  options.seeds = 10;  // keep unit tests quick; benches use the full 100
  return options;
}

TEST(PatternSearch, FeasibleSizesRespectConstraints) {
  const auto sizes = gcrm_feasible_sizes(23, 30);
  EXPECT_FALSE(sizes.empty());
  for (const auto r : sizes) {
    EXPECT_TRUE(gcrm_feasible(23, r));
    EXPECT_LE(r, 30);
  }
  // r = 8 violates Eq. 3 for P = 23 (ceil(56/23)*23 = 69 > 64) and must be
  // absent.
  EXPECT_EQ(std::find(sizes.begin(), sizes.end(), 8), sizes.end());
}

TEST(PatternSearch, FindsValidBalancedPattern) {
  const GcrmSearchResult result = gcrm_search(23, fast_options());
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.best.validate().empty());
  EXPECT_TRUE(result.best.is_balanced(1));
  EXPECT_DOUBLE_EQ(result.best_cost, cholesky_cost(result.best));
}

TEST(PatternSearch, BeatsOrMatchesSbcNeighborhood) {
  // Fig. 10's claim: GCR&M costs sit near or below the SBC curve sqrt(2P).
  for (const std::int64_t P : {23, 31, 35}) {
    const GcrmSearchResult result = gcrm_search(P, fast_options());
    ASSERT_TRUE(result.found) << P;
    EXPECT_LT(result.best_cost, sbc_cost_reference(P) + 1.0) << P;
    EXPECT_GT(result.best_cost, gcrm_cost_limit(P) - 1.0) << P;
  }
}

TEST(PatternSearch, SamplesRecordedWhenRequested) {
  GcrmSearchOptions options = fast_options();
  options.seeds = 3;
  const GcrmSearchResult result = gcrm_search(23, options, true);
  const auto sizes = gcrm_feasible_sizes(
      23, static_cast<std::int64_t>(6.0 * std::sqrt(23.0)));
  EXPECT_EQ(result.samples.size(), sizes.size() * 3);
  for (const auto& sample : result.samples) {
    EXPECT_TRUE(gcrm_feasible(23, sample.r));
    if (sample.valid) EXPECT_GT(sample.cost, 0.0);
  }
}

TEST(PatternSearch, NoSamplesByDefault) {
  const GcrmSearchResult result = gcrm_search(10, fast_options());
  EXPECT_TRUE(result.samples.empty());
}

TEST(PatternSearch, DeterministicGivenSeed) {
  const GcrmSearchResult a = gcrm_search(17, fast_options());
  const GcrmSearchResult b = gcrm_search(17, fast_options());
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.best, b.best);
}

TEST(PatternSearch, WorksForAwkwardNodeCounts) {
  // Primes and near-primes: the cases 2DBC/SBC handle worst.
  for (const std::int64_t P : {7, 11, 13, 19, 29, 37}) {
    GcrmSearchOptions options = fast_options();
    options.seeds = 5;
    const GcrmSearchResult result = gcrm_search(P, options);
    ASSERT_TRUE(result.found) << P;
    EXPECT_TRUE(result.best.is_balanced(1)) << P;
  }
}

TEST(PatternSearch, BestGcrmPatternConvenience) {
  const Pattern p = best_gcrm_pattern(10);
  EXPECT_TRUE(p.validate().empty());
  EXPECT_TRUE(p.is_square());
}

TEST(PatternSearch, InvalidP) {
  EXPECT_THROW(gcrm_search(0, GcrmSearchOptions{}), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::core
