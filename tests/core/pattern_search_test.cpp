#include "core/pattern_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/gcrm.hpp"
#include "core/sbc.hpp"

namespace anyblock::core {
namespace {

GcrmSearchOptions fast_options() {
  GcrmSearchOptions options;
  options.seeds = 10;  // keep unit tests quick; benches use the full 100
  return options;
}

TEST(PatternSearch, FeasibleSizesRespectConstraints) {
  const auto sizes = gcrm_feasible_sizes(23, 30);
  EXPECT_FALSE(sizes.empty());
  for (const auto r : sizes) {
    EXPECT_TRUE(gcrm_feasible(23, r));
    EXPECT_LE(r, 30);
  }
  // r = 8 violates Eq. 3 for P = 23 (ceil(56/23)*23 = 69 > 64) and must be
  // absent.
  EXPECT_EQ(std::find(sizes.begin(), sizes.end(), 8), sizes.end());
}

TEST(PatternSearch, FindsValidBalancedPattern) {
  const GcrmSearchResult result = gcrm_search(23, fast_options());
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.best.validate().empty());
  EXPECT_TRUE(result.best.is_balanced(1));
  EXPECT_DOUBLE_EQ(result.best_cost, cholesky_cost(result.best));
}

TEST(PatternSearch, BeatsOrMatchesSbcNeighborhood) {
  // Fig. 10's claim: GCR&M costs sit near or below the SBC curve sqrt(2P).
  for (const std::int64_t P : {23, 31, 35}) {
    const GcrmSearchResult result = gcrm_search(P, fast_options());
    ASSERT_TRUE(result.found) << P;
    EXPECT_LT(result.best_cost, sbc_cost_reference(P) + 1.0) << P;
    EXPECT_GT(result.best_cost, gcrm_cost_limit(P) - 1.0) << P;
  }
}

TEST(PatternSearch, SamplesRecordedWhenRequested) {
  GcrmSearchOptions options = fast_options();
  options.seeds = 3;
  const GcrmSearchResult result = gcrm_search(23, options, true);
  const auto sizes = gcrm_feasible_sizes(
      23, static_cast<std::int64_t>(6.0 * std::sqrt(23.0)));
  EXPECT_EQ(result.samples.size(), sizes.size() * 3);
  for (const auto& sample : result.samples) {
    EXPECT_TRUE(gcrm_feasible(23, sample.r));
    if (sample.valid) EXPECT_GT(sample.cost, 0.0);
  }
}

TEST(PatternSearch, NoSamplesByDefault) {
  const GcrmSearchResult result = gcrm_search(10, fast_options());
  EXPECT_TRUE(result.samples.empty());
}

TEST(PatternSearch, DeterministicGivenSeed) {
  const GcrmSearchResult a = gcrm_search(17, fast_options());
  const GcrmSearchResult b = gcrm_search(17, fast_options());
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.best, b.best);
}

TEST(PatternSearch, WorksForAwkwardNodeCounts) {
  // Primes and near-primes: the cases 2DBC/SBC handle worst.
  for (const std::int64_t P : {7, 11, 13, 19, 29, 37}) {
    GcrmSearchOptions options = fast_options();
    options.seeds = 5;
    const GcrmSearchResult result = gcrm_search(P, options);
    ASSERT_TRUE(result.found) << P;
    EXPECT_TRUE(result.best.is_balanced(1)) << P;
  }
}

TEST(PatternSearch, BestGcrmPatternConvenience) {
  const Pattern p = best_gcrm_pattern(10);
  EXPECT_TRUE(p.validate().empty());
  EXPECT_TRUE(p.is_square());
}

TEST(PatternSearch, InvalidP) {
  EXPECT_THROW(gcrm_search(0, GcrmSearchOptions{}), std::invalid_argument);
}

TEST(PatternSearch, SmallestNodeCounts) {
  // P = 2 and P = 3: the degenerate end of the sweep, where few r are
  // feasible at all (r(r-1) >= P and Eq. 3 must both hold).
  const GcrmSearchResult two = gcrm_search(2, fast_options());
  ASSERT_TRUE(two.found);
  EXPECT_TRUE(two.best.validate().empty());
  EXPECT_TRUE(two.best.is_balanced(1));
  EXPECT_EQ(two.best_r, 4);
  EXPECT_DOUBLE_EQ(two.best_cost, 1.75);

  const GcrmSearchResult three = gcrm_search(3, fast_options());
  ASSERT_TRUE(three.found);
  EXPECT_EQ(three.best_r, 3);
  EXPECT_DOUBLE_EQ(three.best_cost, 2.0);
  for (const std::int64_t r : gcrm_feasible_sizes(2, 12))
    EXPECT_TRUE(gcrm_feasible(2, r));
}

TEST(PatternSearch, MaxRFactorBoundary) {
  // The sweep ceiling is max_r_factor * sqrt(P); at factor 1 no feasible r
  // survives for P = 23 (the smallest is r = 6 > floor(sqrt(23)) = 4), so
  // the search honestly reports nothing instead of quietly widening.
  GcrmSearchOptions tight = fast_options();
  tight.max_r_factor = 1.0;
  EXPECT_EQ(gcrm_sweep_max_r(23, tight), 4);
  const GcrmSearchResult none = gcrm_search(23, tight);
  EXPECT_FALSE(none.found);

  GcrmSearchOptions standard = fast_options();
  EXPECT_EQ(gcrm_sweep_max_r(23, standard), 28);
  EXPECT_TRUE(gcrm_search(23, standard).found);
}

TEST(PatternSearch, AttemptSeedsAreIndependentStreams) {
  // The per-attempt seed is a pure function of (base, r, s) — the property
  // the parallel sweep's correctness rests on — and distinct across the
  // (r, s) grid.
  const std::uint64_t a = gcrm_attempt_seed(42, 6, 0);
  EXPECT_EQ(a, gcrm_attempt_seed(42, 6, 0));
  EXPECT_NE(a, gcrm_attempt_seed(42, 6, 1));
  EXPECT_NE(a, gcrm_attempt_seed(42, 7, 0));
  EXPECT_NE(a, gcrm_attempt_seed(43, 6, 0));
}

TEST(PatternSearch, DeterminismRegressionPins) {
  // Exact winners under the default base seed with 10 restarts.  These pins
  // freeze the seed derivation (gcrm_attempt_seed) and the sweep's
  // tie-breaking: any change to either shows up here before it silently
  // invalidates shipped winners tables.
  struct Pin {
    std::int64_t P;
    std::int64_t r;
    std::uint64_t seed;
    double cost;
  };
  const Pin pins[] = {
      {2, 4, 10476127714420245461ull, 0x1.cp+0},
      {3, 3, 14776605467051059856ull, 0x1p+1},
      {10, 14, 10199843993517833259ull, 0x1.f6db6db6db6dbp+1},
      {23, 24, 13317451383556275218ull, 0x1.82aaaaaaaaaabp+2},
      {31, 23, 8561350423227967952ull, 0x1.c2c8590b21643p+2},
      {37, 35, 4905807329613737129ull, 0x1.f507507507507p+2},
  };
  for (const Pin& pin : pins) {
    SCOPED_TRACE(pin.P);
    const GcrmSearchResult result = gcrm_search(pin.P, fast_options());
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.best_r, pin.r);
    EXPECT_EQ(result.best_seed, pin.seed);
    EXPECT_EQ(result.best_cost, pin.cost);  // bit-exact, not approximate
  }
}

TEST(PatternSearch, MaxRExactOnPerfectSquares) {
  // The r-grid ceiling is floor(f * sqrt(P)).  The old float-truncation
  // path could land one below on perfect squares (f * sqrt(P) exact in
  // doubles, truncated after a sub-ulp dip); the integer-safe rounding must
  // hit f * m exactly at P = m^2 and stay monotone at P -+ 1.
  for (std::int64_t m = 2; m <= 100; ++m) {
    const std::int64_t P = m * m;
    for (const double f : {1.0, 2.0, 6.0}) {
      GcrmSearchOptions options;
      options.max_r_factor = f;
      const auto exact = static_cast<std::int64_t>(f) * m;
      EXPECT_EQ(gcrm_sweep_max_r(P, options), exact)
          << "P=" << P << " f=" << f;
      EXPECT_LE(gcrm_sweep_max_r(P - 1, options), exact) << "P-1, f=" << f;
      EXPECT_GE(gcrm_sweep_max_r(P + 1, options), exact) << "P+1, f=" << f;
    }
  }
}

TEST(PatternSearch, MaxRMonotoneInP) {
  for (const double f : {1.0, 2.24, 6.0}) {
    GcrmSearchOptions options;
    options.max_r_factor = f;
    for (std::int64_t P = 2; P < 600; ++P)
      EXPECT_LE(gcrm_sweep_max_r(P, options), gcrm_sweep_max_r(P + 1, options))
          << "P=" << P << " f=" << f;
  }
}

TEST(PatternSearch, BalancedCostFloorIsATrueLowerBound) {
  // The pruning bound: every balanced pattern gcrm_build can produce at
  // (P, r) costs at least gcrm_balanced_cost_floor(P, r, slack).
  for (const std::int64_t P : {7, 12, 23, 31}) {
    const auto sizes =
        gcrm_feasible_sizes(P, gcrm_sweep_max_r(P, GcrmSearchOptions{}));
    for (const std::int64_t r : sizes) {
      const double floor = gcrm_balanced_cost_floor(P, r, 1);
      for (std::uint64_t s = 0; s < 3; ++s) {
        const GcrmResult built =
            gcrm_build(P, r, gcrm_attempt_seed(GcrmSearchOptions{}.base_seed, r, s));
        if (!built.valid || !built.pattern.is_balanced(1)) continue;
        EXPECT_GE(cholesky_cost(built.pattern), floor)
            << "P=" << P << " r=" << r << " s=" << s;
      }
    }
  }
}

TEST(PatternSearch, PrunedSweepBitIdenticalToUnpruned) {
  // The golden grid: pruning and early abandonment must return the SAME
  // winner coordinates, cost bits, and pattern as the exhaustive sweep.
  for (const std::int64_t P : {2, 3, 7, 12, 16, 23, 31, 36, 49}) {
    SCOPED_TRACE(P);
    GcrmSearchOptions pruned = fast_options();
    pruned.prune = true;
    GcrmSearchOptions unpruned = fast_options();
    unpruned.prune = false;
    const GcrmSearchResult a = gcrm_search(P, pruned);
    const GcrmSearchResult b = gcrm_search(P, unpruned);
    ASSERT_EQ(a.found, b.found);
    if (!a.found) continue;
    EXPECT_EQ(a.best_r, b.best_r);
    EXPECT_EQ(a.best_seed, b.best_seed);
    EXPECT_EQ(a.best_cost, b.best_cost);  // bit-exact
    EXPECT_EQ(a.best, b.best);
  }
}

TEST(PatternSearch, KeepSamplesDisablesPruning) {
  // Sample consumers (Fig. 9) need every attempt's true cost; prune must
  // silently switch off rather than record abandoned attempts.
  GcrmSearchOptions options = fast_options();
  options.seeds = 3;
  options.prune = true;
  const GcrmSearchResult with = gcrm_search(23, options, true);
  options.prune = false;
  const GcrmSearchResult without = gcrm_search(23, options, true);
  ASSERT_EQ(with.samples.size(), without.samples.size());
  for (std::size_t i = 0; i < with.samples.size(); ++i) {
    EXPECT_EQ(with.samples[i].r, without.samples[i].r);
    EXPECT_EQ(with.samples[i].cost, without.samples[i].cost);
  }
}

TEST(PatternSearch, SweepProfileCountersAreConsistent) {
  GcrmSearchOptions options = fast_options();
  GcrmSweepProfile profile;
  const GcrmSearchResult result = gcrm_search(23, options, false, &profile);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(profile.searches, 1);
  const auto sizes = gcrm_feasible_sizes(23, gcrm_sweep_max_r(23, options));
  EXPECT_EQ(profile.sizes_feasible,
            static_cast<std::int64_t>(sizes.size()));
  EXPECT_LE(profile.sizes_pruned, profile.sizes_feasible);
  // Every attempt is accounted for exactly once.
  EXPECT_EQ(profile.attempts_built + profile.attempts_abandoned +
                profile.attempts_skipped,
            profile.sizes_feasible * options.seeds);
  EXPECT_GT(profile.attempts_built, 0);
  EXPECT_GE(profile.total_seconds, 0.0);
  EXPECT_GE(profile.timings.phase1_seconds, 0.0);

  // merge() adds counters and timings.
  GcrmSweepProfile sum = profile;
  sum.merge(profile);
  EXPECT_EQ(sum.attempts_built, 2 * profile.attempts_built);
  EXPECT_EQ(sum.searches, 2);

  // Metric rows carry every counter under the sweep_ prefix.
  const auto rows = profile.metric_rows();
  EXPECT_EQ(rows.size(), 12u);
  for (const auto& [name, value] : rows) {
    EXPECT_EQ(name.rfind("sweep_", 0), 0u) << name;
    EXPECT_GE(value, 0.0) << name;
  }
}

TEST(PatternSearch, PruneFlagExcludedFromOptionsIdentity) {
  // Stores and winner tables key on result-changing options only; pruning
  // is result-identical so flipping it must not invalidate cached rows.
  GcrmSearchOptions a;
  GcrmSearchOptions b;
  b.prune = !a.prune;
  EXPECT_TRUE(a == b);
  b.seeds += 1;
  EXPECT_FALSE(a == b);
}

TEST(PatternSearch, WinnerCoordinatesReproduceTheWinner) {
  // (best_r, best_seed) must rebuild `best` exactly — the contract the
  // winners table ships on.
  for (const std::int64_t P : {10, 23, 31}) {
    const GcrmSearchResult result = gcrm_search(P, fast_options());
    ASSERT_TRUE(result.found) << P;
    const GcrmResult rebuilt = gcrm_build(P, result.best_r, result.best_seed);
    ASSERT_TRUE(rebuilt.valid) << P;
    EXPECT_EQ(rebuilt.pattern, result.best) << P;
  }
}

}  // namespace
}  // namespace anyblock::core
