#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/sbc.hpp"

namespace anyblock::core {
namespace {

TEST(Bounds, SquareGridsMeetTheLuReference) {
  // A perfect square 2DBC grid achieves exactly 2*sqrt(P).
  for (const std::int64_t p : {2, 3, 5, 8}) {
    const std::int64_t P = p * p;
    EXPECT_DOUBLE_EQ(lu_cost(make_2dbc(p, p)), lu_cost_reference(P));
  }
}

TEST(Bounds, NoPatternBeatsTheLuReferenceMeaningfully) {
  // Every constructible pattern in the library respects T >= 2*sqrt(P) - 1
  // (each row/column needs ~sqrt(P) distinct nodes; the -1 covers integer
  // rounding at non-square P).
  for (std::int64_t P = 2; P <= 60; ++P) {
    EXPECT_GE(lu_cost(make_g2dbc(P)), lu_cost_reference(P) - 1.0) << P;
    EXPECT_GE(lu_cost(best_2dbc(P)), lu_cost_reference(P) - 1.0) << P;
  }
}

TEST(Bounds, Lemma2BoundIsTightForSquares) {
  for (const std::int64_t p : {3, 5, 10}) {
    const std::int64_t P = p * p;
    EXPECT_LT(g2dbc_cost_bound(P) - lu_cost_reference(P), 1.0);
    EXPECT_GT(g2dbc_cost_bound(P), lu_cost_reference(P));
  }
}

TEST(Bounds, SbcCurvesOrdering) {
  // extended < basic reference for every P, both well below 2*sqrt(P) - 1.
  for (std::int64_t P = 4; P <= 100; ++P) {
    EXPECT_LT(sbc_extended_cost_reference(P), sbc_cost_reference(P));
    EXPECT_LT(sbc_cost_reference(P), 2.0 * std::sqrt(static_cast<double>(P)));
    EXPECT_LT(gcrm_cost_limit(P), sbc_cost_reference(P));
  }
}

TEST(Bounds, SbcPatternsMatchTheirCurves) {
  for (std::int64_t a = 4; a <= 16; a += 2) {
    const std::int64_t P = a * a / 2;
    EXPECT_DOUBLE_EQ(cholesky_cost(make_sbc(P)), sbc_cost_reference(P));
  }
}

TEST(Bounds, CommLowerBoundScalesAsExpected) {
  // m^2 / sqrt(P): doubling m quadruples it; quadrupling P halves it.
  const double base = lu_comm_lower_bound_per_node(1000.0, 16);
  EXPECT_DOUBLE_EQ(lu_comm_lower_bound_per_node(2000.0, 16), 4.0 * base);
  EXPECT_DOUBLE_EQ(lu_comm_lower_bound_per_node(1000.0, 64), base / 2.0);
}

}  // namespace
}  // namespace anyblock::core
