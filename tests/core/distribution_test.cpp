#include "core/distribution.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/block_cyclic.hpp"
#include "core/gcrm.hpp"
#include "core/sbc.hpp"

namespace anyblock::core {
namespace {

TEST(Distribution, CompletePatternPassThrough) {
  const Pattern p = make_2dbc(2, 3);
  const PatternDistribution dist(p, 12, /*symmetric=*/false);
  for (std::int64_t i = 0; i < 12; ++i)
    for (std::int64_t j = 0; j < 12; ++j)
      EXPECT_EQ(dist.owner(i, j), p.owner_of_tile(i, j));
}

TEST(Distribution, RejectsIncompleteRectangular) {
  Pattern p(2, 3, 6);  // all free, rectangular
  EXPECT_THROW(PatternDistribution(p, 4, false), std::invalid_argument);
}

TEST(Distribution, BindsFreeDiagonalToColrowNode) {
  const Pattern p = make_sbc(21);  // 7x7, free diagonal
  const std::int64_t t = 35;
  const PatternDistribution dist(p, t, /*symmetric=*/true);
  for (std::int64_t i = 0; i < t; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      if (i % 7 != j % 7) continue;
      const NodeId owner = dist.owner(i, j);
      // Owner must belong to the colrow d = i mod 7 of the pattern.
      const std::int64_t d = i % 7;
      bool in_colrow = false;
      for (std::int64_t k = 0; k < 7; ++k) {
        if (p.at(d, k) == owner || p.at(k, d) == owner) in_colrow = true;
      }
      EXPECT_TRUE(in_colrow) << "tile (" << i << "," << j << ")";
    }
  }
}

TEST(Distribution, LazyBindingBalancesLoads) {
  // Extended SBC's whole point: the per-replica diagonal assignment keeps
  // tile loads nearly equal (paper, Section V).
  const Pattern p = make_sbc(21);
  const PatternDistribution dist(p, 70, /*symmetric=*/true);
  const auto loads = dist.tile_loads();
  const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
  EXPECT_GT(*lo, 0);
  const double spread =
      static_cast<double>(*hi - *lo) / static_cast<double>(*hi);
  EXPECT_LT(spread, 0.05);
}

TEST(Distribution, GcrmPatternBindsEverywhere) {
  const GcrmResult result = gcrm_build(23, 10, 5);
  ASSERT_TRUE(result.valid);
  const std::int64_t t = 25;
  const PatternDistribution dist(result.pattern, t, /*symmetric=*/true);
  for (std::int64_t i = 0; i < t; ++i)
    for (std::int64_t j = 0; j <= i; ++j) {
      const NodeId owner = dist.owner(i, j);
      EXPECT_GE(owner, 0);
      EXPECT_LT(owner, 23);
    }
}

TEST(Distribution, DifferentReplicasMayGetDifferentOwners) {
  // The same free diagonal cell, replicated across the matrix, can be bound
  // to different nodes — that is what evens out the load.
  const Pattern p = make_sbc(21);
  const PatternDistribution dist(p, 70, /*symmetric=*/true);
  bool saw_difference = false;
  for (std::int64_t d = 0; d < 7 && !saw_difference; ++d) {
    const NodeId first = dist.owner(d, d);
    for (std::int64_t rep = 1; 7 * rep + d < 70; ++rep) {
      if (dist.owner(7 * rep + d, 7 * rep + d) != first) {
        saw_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_difference);
}

TEST(Distribution, ExplicitDistribution) {
  std::vector<NodeId> owners = {0, 1, 1, 0};
  const ExplicitDistribution dist(std::move(owners), 2, 2, "test");
  EXPECT_EQ(dist.owner(0, 0), 0);
  EXPECT_EQ(dist.owner(0, 1), 1);
  EXPECT_EQ(dist.owner(1, 0), 1);
  EXPECT_EQ(dist.owner(1, 1), 0);
  EXPECT_EQ(dist.num_nodes(), 2);
  EXPECT_EQ(dist.name(), "test");
}

TEST(Distribution, ExplicitRejectsWrongSize) {
  EXPECT_THROW(ExplicitDistribution({0, 1, 2}, 2, 3), std::invalid_argument);
}

TEST(Distribution, InvalidTileGrid) {
  EXPECT_THROW(PatternDistribution(make_2dbc(2, 2), 0, false),
               std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::core
