// Property tests pinning the constructions to the paper's structural
// theory, beyond the cost values:
//  * G-2DBC column structure (Section IV-B): a-c columns per IP copy hold
//    b distinct nodes, the c duplicated columns hold b-1;
//  * SBC colrow structure: every node lives on exactly 2 colrows (v = 2);
//  * GCR&M: z-bar relates to the mean number of colrows per node by the
//    regular-pattern argument of Section V-B.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/gcrm.hpp"
#include "core/sbc.hpp"

namespace anyblock::core {
namespace {

class G2dbcColumnTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(G2dbcColumnTest, ColumnDistinctCountsAreBOrBMinusOne) {
  const std::int64_t P = GetParam();
  const G2dbcParams params = g2dbc_params(P);
  if (params.degenerate()) return;
  const Pattern pattern = make_g2dbc(P);
  // Section IV-B: exactly b(a-c) columns hold b distinct nodes and (b-1)c
  // columns hold b-1 (duplicates land column-aligned).
  std::int64_t with_b = 0;
  std::int64_t with_b_minus_1 = 0;
  for (std::int64_t j = 0; j < pattern.cols(); ++j) {
    const std::int64_t distinct = pattern.distinct_in_col(j);
    if (distinct == params.b) {
      ++with_b;
    } else if (distinct == params.b - 1) {
      ++with_b_minus_1;
    } else {
      FAIL() << "column " << j << " has " << distinct << " distinct nodes";
    }
  }
  EXPECT_EQ(with_b, params.b * (params.a - params.c)) << "P=" << P;
  EXPECT_EQ(with_b_minus_1, (params.b - 1) * params.c) << "P=" << P;
}

INSTANTIATE_TEST_SUITE_P(AllP, G2dbcColumnTest,
                         ::testing::Range<std::int64_t>(3, 100));

class SbcColrowTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SbcColrowTest, EveryNodeLivesOnExactlyTwoColrows) {
  const std::int64_t P = GetParam();
  if (!sbc_feasible(P)) return;
  const Pattern pattern = make_sbc(P);
  const std::int64_t a = pattern.rows();
  std::vector<std::set<std::int64_t>> colrows(
      static_cast<std::size_t>(P));
  for (std::int64_t i = 0; i < a; ++i) {
    for (std::int64_t j = 0; j < a; ++j) {
      const NodeId n = pattern.at(i, j);
      if (n == Pattern::kFree) continue;
      colrows[static_cast<std::size_t>(n)].insert(i);
      colrows[static_cast<std::size_t>(n)].insert(j);
    }
  }
  for (std::int64_t n = 0; n < P; ++n)
    EXPECT_EQ(colrows[static_cast<std::size_t>(n)].size(), 2u)
        << "P=" << P << " node " << n;
}

INSTANTIATE_TEST_SUITE_P(FeasibleP, SbcColrowTest,
                         ::testing::Values(3, 6, 8, 10, 15, 18, 21, 28, 32,
                                           36, 45, 50));

TEST(TheoryProperties, GcrmZbarMatchesColrowSumIdentity) {
  // Section V-B: sum_i z_i counts (node, colrow) incidences, so z-bar * r
  // equals the total number of colrows the nodes actually appear on.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const GcrmResult result = gcrm_build(23, 14, seed);
    ASSERT_TRUE(result.valid);
    const Pattern& p = result.pattern;
    const std::int64_t r = p.rows();
    std::vector<std::set<std::int64_t>> on_colrow(
        static_cast<std::size_t>(p.num_nodes()));
    for (std::int64_t i = 0; i < r; ++i) {
      for (std::int64_t j = 0; j < r; ++j) {
        const NodeId n = p.at(i, j);
        if (n == Pattern::kFree) continue;
        on_colrow[static_cast<std::size_t>(n)].insert(i);
        on_colrow[static_cast<std::size_t>(n)].insert(j);
      }
    }
    std::int64_t incidences = 0;
    for (const auto& s : on_colrow)
      incidences += static_cast<std::int64_t>(s.size());
    std::int64_t colrow_sum = 0;
    for (std::int64_t i = 0; i < r; ++i) colrow_sum += p.distinct_in_colrow(i);
    EXPECT_EQ(colrow_sum, incidences);
    EXPECT_NEAR(cholesky_cost(p),
                static_cast<double>(incidences) / static_cast<double>(r),
                1e-12);
  }
}

TEST(TheoryProperties, SbcColrowCountMatchesVOverSqrtLArgument) {
  // The regular-pattern estimate z-bar ~ (v / sqrt(l)) * sqrt(P) with
  // v = 2, l = 2 predicts sqrt(2P); the constructed SBC patterns agree to
  // within the integer-rounding slack of 1.
  for (const std::int64_t P : {21, 28, 32, 36, 45, 50}) {
    const double zbar = cholesky_cost(make_sbc(P));
    EXPECT_NEAR(zbar, std::sqrt(2.0 * static_cast<double>(P)), 1.0)
        << "P=" << P;
  }
}

}  // namespace
}  // namespace anyblock::core
