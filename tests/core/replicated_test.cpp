// Unit tests for the 2.5D replicated distribution (core/replicated.hpp)
// and its closed-form cost/bound companions (core/cost.hpp,
// core/bounds.hpp).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "comm/config.hpp"
#include "core/block_cyclic.hpp"
#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/replicated.hpp"

namespace anyblock::core {
namespace {

std::shared_ptr<const Distribution> base_dist(std::int64_t nodes,
                                              std::int64_t t,
                                              bool symmetric = false) {
  return std::make_shared<PatternDistribution>(make_g2dbc(nodes), t,
                                               symmetric);
}

TEST(ReplicatedDistribution, NodeIdsAndLayerMaps) {
  const std::int64_t t = 12;
  const ReplicatedDistribution dist(base_dist(5, t), 3);
  EXPECT_EQ(dist.base_nodes(), 5);
  EXPECT_EQ(dist.layers(), 3);
  EXPECT_EQ(dist.num_nodes(), 15);
  EXPECT_EQ(dist.replica(2, 0), 2);
  EXPECT_EQ(dist.replica(2, 2), 12);
  EXPECT_EQ(dist.home_layer(0), 0);
  EXPECT_EQ(dist.home_layer(4), 1);

  // Final owner = base owner's replica on the finalization layer.
  for (std::int64_t i = 0; i < t; ++i)
    for (std::int64_t j = 0; j < t; ++j) {
      const std::int64_t m = i < j ? i : j;
      EXPECT_EQ(dist.owner(i, j),
                dist.replica(dist.base().owner(i, j), dist.home_layer(m)));
      EXPECT_EQ(dist.compute_node(m, i, j), dist.owner(i, j));
    }
}

TEST(ReplicatedDistribution, RemoteLayerEnumerationSkipsHome) {
  const ReplicatedDistribution dist(base_dist(4, 16), 4);
  // Early iterations: only layers 0..m-1 ever accumulated updates.
  EXPECT_EQ(dist.remote_layer_count(0), 0);
  EXPECT_EQ(dist.remote_layer_count(2), 2);
  EXPECT_EQ(dist.remote_layer(2, 0), 0);
  EXPECT_EQ(dist.remote_layer(2, 1), 1);
  // Steady state: every layer but the home one flushes.
  for (std::int64_t m = 4; m < 12; ++m) {
    EXPECT_EQ(dist.remote_layer_count(m), 3);
    const std::int64_t home = dist.home_layer(m);
    for (std::int64_t s = 0; s < 3; ++s) {
      const std::int64_t q = dist.remote_layer(m, s);
      EXPECT_NE(q, home) << m;
      EXPECT_EQ(dist.remote_slot(m, q), s) << m;  // round trip
      if (s > 0) EXPECT_GT(q, dist.remote_layer(m, s - 1));  // ascending
    }
  }
}

TEST(ReplicatedDistribution, OneLayerIsTheBase) {
  const std::int64_t t = 10;
  const auto base = base_dist(7, t);
  const ReplicatedDistribution dist(base, 1);
  EXPECT_EQ(dist.num_nodes(), base->num_nodes());
  EXPECT_EQ(dist.name(), base->name());
  for (std::int64_t i = 0; i < t; ++i)
    for (std::int64_t j = 0; j < t; ++j)
      EXPECT_EQ(dist.owner(i, j), base->owner(i, j));
  for (std::int64_t m = 0; m < t; ++m)
    EXPECT_EQ(dist.remote_layer_count(m), 0);
}

TEST(ReplicatedDistribution, RejectsBadArguments) {
  EXPECT_THROW(ReplicatedDistribution(base_dist(4, 8), 0),
               std::invalid_argument);
  EXPECT_THROW(ReplicatedDistribution(base_dist(4, 8), -2),
               std::invalid_argument);
  EXPECT_THROW(ReplicatedDistribution(nullptr, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Closed-form reduce counts and 2.5D totals.

TEST(Cost25d, ReduceCountsMatchDirectEnumeration) {
  for (const std::int64_t t : {1, 5, 12}) {
    for (const std::int64_t c : {1, 2, 3, 5}) {
      std::int64_t lu = 0;
      std::int64_t chol = 0;
      for (std::int64_t m = 0; m < t; ++m) {
        const std::int64_t rq = m < c - 1 ? m : c - 1;
        lu += (2 * (t - 1 - m) + 1) * rq;  // (m,m), column and row panels
        chol += (t - m) * rq;              // (m,m) and the column panel
      }
      EXPECT_EQ(reduce_count_lu(t, c), lu) << t << " " << c;
      EXPECT_EQ(reduce_count_cholesky(t, c), chol) << t << " " << c;
      if (c == 1) {
        EXPECT_EQ(reduce_count_lu(t, c), 0);
        EXPECT_EQ(reduce_count_cholesky(t, c), 0);
      }
    }
  }
}

TEST(Cost25d, VolumeIsBaseBroadcastPlusReduces) {
  const std::int64_t t = 18;
  for (const std::int64_t c : {1, 2, 4}) {
    const ReplicatedDistribution lu(base_dist(6, t), c);
    const ReplicatedDistribution chol(base_dist(6, t, true), c);
    EXPECT_EQ(exact_lu_volume_25d(lu, t),
              exact_lu_volume(lu.base(), t) + reduce_count_lu(t, c));
    EXPECT_EQ(exact_cholesky_volume_25d(chol, t),
              exact_cholesky_volume(chol.base(), t) +
                  reduce_count_cholesky(t, c));
    comm::CollectiveConfig config;
    config.algorithm = comm::Algorithm::kEagerP2P;
    EXPECT_EQ(exact_lu_messages_25d(lu, t, config),
              exact_lu_volume_25d(lu, t));
  }
}

TEST(Cost25d, SendProfilesSumToTheVolume) {
  const std::int64_t t = 15;
  for (const std::int64_t c : {1, 3}) {
    const ReplicatedDistribution lu(base_dist(5, t), c);
    const ReplicatedDistribution chol(base_dist(5, t, true), c);
    std::int64_t lu_total = 0;
    for (const std::int64_t sent : lu_send_profile_25d(lu, t))
      lu_total += sent;
    EXPECT_EQ(lu_total, exact_lu_volume_25d(lu, t)) << c;
    std::int64_t chol_total = 0;
    for (const std::int64_t sent : cholesky_send_profile_25d(chol, t))
      chol_total += sent;
    EXPECT_EQ(chol_total, exact_cholesky_volume_25d(chol, t)) << c;
  }
}

// ---------------------------------------------------------------------------
// Parallel-I/O lower bound (core/bounds.hpp).

TEST(IoLowerBound25d, ScalesDownWithMemoryAndClampsAtZero) {
  const std::int64_t t = 64;
  const std::int64_t nodes = 256;
  const double c1 = lu_io_lower_bound_tiles(t, nodes, 1);
  const double c4 = lu_io_lower_bound_tiles(t, nodes, 4);
  EXPECT_GT(c1, 0.0);
  EXPECT_LE(c4, c1);  // more memory per node can only weaken the bound
  EXPECT_GE(c4, 0.0);
  // Enough memory for the whole matrix: the bound must collapse to zero,
  // never go negative.
  EXPECT_EQ(lu_io_lower_bound_tiles(8, 2, 64), 0.0);
  EXPECT_EQ(cholesky_io_lower_bound_tiles(8, 2, 64), 0.0);
}

TEST(IoLowerBound25d, NeverExceedsTheExactScheduleVolume) {
  // Safety of the reference curve: the bound must sit at or below what the
  // 2.5D schedule actually sends, for every shape we plot.
  for (const std::int64_t base_nodes : {4, 8, 16}) {
    for (const std::int64_t c : {1, 2, 4}) {
      for (const std::int64_t t : {16, 32, 64}) {
        const ReplicatedDistribution lu(base_dist(base_nodes, t), c);
        const ReplicatedDistribution chol(base_dist(base_nodes, t, true), c);
        EXPECT_GE(static_cast<double>(exact_lu_volume_25d(lu, t)),
                  lu_io_lower_bound_tiles(t, lu.num_nodes(), c))
            << base_nodes << " " << c << " " << t;
        EXPECT_GE(static_cast<double>(exact_cholesky_volume_25d(chol, t)),
                  cholesky_io_lower_bound_tiles(t, chol.num_nodes(), c))
            << base_nodes << " " << c << " " << t;
      }
    }
  }
}

}  // namespace
}  // namespace anyblock::core
