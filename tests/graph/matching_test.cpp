#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "graph/bipartite.hpp"
#include "graph/hopcroft_karp.hpp"
#include "util/rng.hpp"

namespace anyblock::graph {
namespace {

/// Exponential-time exact maximum matching by augmenting paths (Kuhn);
/// correct for any graph, used as the oracle for randomized tests.
std::size_t kuhn_max_matching(const BipartiteGraph& g) {
  std::vector<std::int32_t> match_right(g.right_count(), -1);
  std::vector<bool> used;
  std::function<bool(std::size_t)> try_augment = [&](std::size_t u) -> bool {
    for (const std::uint32_t v : g.neighbors(u)) {
      if (used[v]) continue;
      used[v] = true;
      if (match_right[v] == -1 ||
          try_augment(static_cast<std::size_t>(match_right[v]))) {
        match_right[v] = static_cast<std::int32_t>(u);
        return true;
      }
    }
    return false;
  };
  std::size_t size = 0;
  for (std::size_t u = 0; u < g.left_count(); ++u) {
    used.assign(g.right_count(), false);
    if (try_augment(u)) ++size;
  }
  return size;
}

TEST(Matching, EmptyGraph) {
  BipartiteGraph g(3, 3);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 0u);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(Matching, PerfectMatchingOnIdentity) {
  BipartiteGraph g(5, 5);
  for (std::size_t i = 0; i < 5; ++i) g.add_edge(i, i);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 5u);
  EXPECT_TRUE(is_valid_matching(g, m));
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(m.match_left[i], static_cast<std::int32_t>(i));
}

TEST(Matching, RequiresAugmentingPath) {
  // Greedy on this graph can match (0 -> 0) and leave 1 unmatched unless it
  // augments: left 0 connects to {0, 1}, left 1 connects only to {0}.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 2u);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(Matching, CompleteBipartite) {
  BipartiteGraph g(4, 7);
  for (std::size_t u = 0; u < 4; ++u)
    for (std::size_t v = 0; v < 7; ++v) g.add_edge(u, v);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 4u);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(Matching, GreedyIsValidButMaybeSmaller) {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 1);
  const Matching greedy = greedy_matching(g);
  EXPECT_TRUE(is_valid_matching(g, greedy));
  const Matching max = hopcroft_karp(g);
  EXPECT_TRUE(is_valid_matching(g, max));
  EXPECT_LE(greedy.size, max.size);
  // Left 1 and left 2 compete for rights {0, 1} together with left 0, and
  // only two right vertices are reachable, so the maximum is 2.
  EXPECT_EQ(max.size, 2u);
}

TEST(Matching, WarmStartPreservesMaximality) {
  BipartiteGraph g(6, 6);
  for (std::size_t u = 0; u < 6; ++u) {
    g.add_edge(u, u);
    g.add_edge(u, (u + 1) % 6);
  }
  const Matching cold = hopcroft_karp(g);
  const Matching warm = hopcroft_karp(g, greedy_matching(g));
  EXPECT_EQ(cold.size, warm.size);
  EXPECT_EQ(cold.size, 6u);
}

struct RandomGraphCase {
  std::size_t left;
  std::size_t right;
  double density;
  std::uint64_t seed;
};

class MatchingRandomTest : public ::testing::TestWithParam<RandomGraphCase> {};

TEST_P(MatchingRandomTest, MatchesKuhnOracle) {
  const auto param = GetParam();
  Rng rng(param.seed);
  BipartiteGraph g(param.left, param.right);
  for (std::size_t u = 0; u < param.left; ++u)
    for (std::size_t v = 0; v < param.right; ++v)
      if (rng.uniform() < param.density) g.add_edge(u, v);
  const Matching m = hopcroft_karp(g);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_EQ(m.size, kuhn_max_matching(g));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, MatchingRandomTest,
    ::testing::Values(RandomGraphCase{10, 10, 0.2, 1},
                      RandomGraphCase{10, 10, 0.5, 2},
                      RandomGraphCase{30, 20, 0.1, 3},
                      RandomGraphCase{20, 30, 0.3, 4},
                      RandomGraphCase{50, 50, 0.05, 5},
                      RandomGraphCase{50, 50, 0.9, 6},
                      RandomGraphCase{64, 8, 0.4, 7},
                      RandomGraphCase{8, 64, 0.4, 8}));

}  // namespace
}  // namespace anyblock::graph
