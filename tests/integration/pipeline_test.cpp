// Whole-pipeline integration: the path a downstream user takes.
//
//   recommend_pattern -> PatternDistribution -> (a) cluster simulation,
//   (b) real distributed factorization + solve over thread ranks,
// with the communication model cross-checked between (a), (b) and the
// analytic counters at every step.
#include <gtest/gtest.h>

#include "comm/config.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/pattern_search.hpp"
#include "core/recommend.hpp"
#include "dist/dist_factorization.hpp"
#include "dist/dist_solve.hpp"
#include "linalg/generators.hpp"
#include "linalg/solve.hpp"
#include "linalg/verify.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace anyblock {
namespace {

constexpr std::int64_t kNb = 4;

core::RecommendOptions fast_options() {
  core::RecommendOptions options;
  options.search.seeds = 10;
  return options;
}

class PipelineTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PipelineTest, LuEndToEnd) {
  const std::int64_t P = GetParam();
  const std::int64_t t = 2 * P / 3 + 4;  // a few pattern replicas
  const core::Recommendation rec = core::recommend_pattern(P, core::Kernel::kLu);
  const core::PatternDistribution dist(rec.pattern, t, false, rec.scheme);

  // (a) simulate: message count equals the analytic owner-computes volume.
  sim::MachineConfig machine;
  machine.nodes = P;
  machine.workers_per_node = 2;
  const sim::SimReport report = sim::simulate_lu(t, dist, machine);
  const std::int64_t analytic = core::exact_lu_volume(rec.pattern, t);
  EXPECT_EQ(report.messages, analytic);

  // (b) real distributed run: same count again, correct numerics, and the
  // solve completes the user workflow.
  Rng rng(41);
  const linalg::DenseMatrix a = linalg::diag_dominant_matrix(t * kNb, rng);
  const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);
  const dist::DistRunResult run = dist::distributed_lu(input, dist);
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.tile_messages, analytic);
  EXPECT_LT(linalg::lu_residual(a, run.factored), 1e-12);

  std::vector<double> b(static_cast<std::size_t>(t * kNb));
  for (double& v : b) v = 2.0 * rng.uniform() - 1.0;
  const dist::DistSolveResult solved = dist::distributed_lu_solve(input, b, dist);
  ASSERT_TRUE(solved.ok);
  EXPECT_LT(linalg::solve_residual(a, solved.x, b), 1e-11);
}

TEST_P(PipelineTest, CholeskyEndToEnd) {
  const std::int64_t P = GetParam();
  const std::int64_t t = 2 * P / 3 + 4;
  const core::Recommendation rec =
      core::recommend_pattern(P, core::Kernel::kCholesky, fast_options());
  const core::PatternDistribution dist(rec.pattern, t, true, rec.scheme);

  sim::MachineConfig machine;
  machine.nodes = P;
  machine.workers_per_node = 2;
  const sim::SimReport report = sim::simulate_cholesky(t, dist, machine);
  const std::int64_t analytic = core::exact_cholesky_volume(rec.pattern, t);
  EXPECT_EQ(report.messages, analytic);

  Rng rng(43);
  const linalg::DenseMatrix a = linalg::spd_matrix(t * kNb, rng);
  const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);
  const dist::DistRunResult run = dist::distributed_cholesky(input, dist);
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.tile_messages, analytic);
  EXPECT_LT(linalg::cholesky_residual(a, run.factored), 1e-12);

  std::vector<double> b(static_cast<std::size_t>(t * kNb));
  for (double& v : b) v = 2.0 * rng.uniform() - 1.0;
  const dist::DistSolveResult solved =
      dist::distributed_cholesky_solve(input, b, dist);
  ASSERT_TRUE(solved.ok);
  EXPECT_LT(linalg::solve_residual(a, solved.x, b), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, PipelineTest,
                         ::testing::Values(2, 5, 7, 10, 12));

/// One end-to-end case per collective algorithm on an irregular P=23
/// distribution: the vmpi-measured message counters, the simulator totals
/// and the closed-form core::exact_*_messages prediction must agree
/// *exactly*, and the numerics must stay correct — the three-layer
/// cross-check the comm subsystem is built around.
class CollectiveAlgorithms
    : public ::testing::TestWithParam<comm::Algorithm> {};

TEST_P(CollectiveAlgorithms, LuEndToEndAgreesAcrossAllThreeLayers) {
  const std::int64_t P = 23;
  const std::int64_t t = 16;
  comm::CollectiveConfig config;
  config.algorithm = GetParam();
  config.chain_chunks = 3;

  const core::Pattern pattern = core::make_g2dbc(P);
  const core::PatternDistribution dist(pattern, t, false, "G-2DBC");
  const std::int64_t predicted = core::exact_lu_messages(dist, t, config);
  ASSERT_GT(predicted, 0);

  sim::MachineConfig machine;
  machine.nodes = P;
  machine.workers_per_node = 2;
  machine.collective = config;
  EXPECT_EQ(sim::simulate_lu(t, dist, machine).messages, predicted);

  Rng rng(59);
  const linalg::DenseMatrix a = linalg::diag_dominant_matrix(t * kNb, rng);
  const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);
  const dist::DistRunResult run = dist::distributed_lu(input, dist, config);
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.tile_messages, predicted);
  EXPECT_LT(linalg::lu_residual(a, run.factored), 1e-12);

  std::vector<double> b(static_cast<std::size_t>(t * kNb));
  for (double& v : b) v = 2.0 * rng.uniform() - 1.0;
  const dist::DistSolveResult solved =
      dist::distributed_lu_solve(input, b, dist, config);
  ASSERT_TRUE(solved.ok);
  EXPECT_EQ(solved.factor_messages, predicted);
  EXPECT_LT(linalg::solve_residual(a, solved.x, b), 1e-11);
}

TEST_P(CollectiveAlgorithms, CholeskyEndToEndAgreesAcrossAllThreeLayers) {
  const std::int64_t P = 23;
  const std::int64_t t = 14;
  comm::CollectiveConfig config;
  config.algorithm = GetParam();
  config.chain_chunks = 3;

  core::GcrmSearchOptions options;
  options.seeds = 10;
  const core::GcrmSearchResult search = core::gcrm_search(P, options);
  ASSERT_TRUE(search.found);
  const core::PatternDistribution dist(search.best, t, true, "GCR&M");
  const std::int64_t predicted = core::exact_cholesky_messages(dist, t, config);
  ASSERT_GT(predicted, 0);

  sim::MachineConfig machine;
  machine.nodes = P;
  machine.workers_per_node = 2;
  machine.collective = config;
  EXPECT_EQ(sim::simulate_cholesky(t, dist, machine).messages, predicted);

  Rng rng(61);
  const linalg::DenseMatrix a = linalg::spd_matrix(t * kNb, rng);
  const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);
  const dist::DistRunResult run =
      dist::distributed_cholesky(input, dist, config);
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.tile_messages, predicted);
  EXPECT_LT(linalg::cholesky_residual(a, run.factored), 1e-12);

  std::vector<double> b(static_cast<std::size_t>(t * kNb));
  for (double& v : b) v = 2.0 * rng.uniform() - 1.0;
  const dist::DistSolveResult solved =
      dist::distributed_cholesky_solve(input, b, dist, config);
  ASSERT_TRUE(solved.ok);
  EXPECT_EQ(solved.factor_messages, predicted);
  EXPECT_LT(linalg::solve_residual(a, solved.x, b), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CollectiveAlgorithms,
                         ::testing::Values(comm::Algorithm::kEagerP2P,
                                           comm::Algorithm::kBinomialTree,
                                           comm::Algorithm::kPipelinedChain),
                         [](const auto& info) {
                           return comm::algorithm_name(info.param);
                         });

}  // namespace
}  // namespace anyblock
