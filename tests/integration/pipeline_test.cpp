// Whole-pipeline integration: the path a downstream user takes.
//
//   recommend_pattern -> PatternDistribution -> (a) cluster simulation,
//   (b) real distributed factorization + solve over thread ranks,
// with the communication model cross-checked between (a), (b) and the
// analytic counters at every step.
#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/recommend.hpp"
#include "dist/dist_factorization.hpp"
#include "dist/dist_solve.hpp"
#include "linalg/generators.hpp"
#include "linalg/solve.hpp"
#include "linalg/verify.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace anyblock {
namespace {

constexpr std::int64_t kNb = 4;

core::RecommendOptions fast_options() {
  core::RecommendOptions options;
  options.search.seeds = 10;
  return options;
}

class PipelineTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PipelineTest, LuEndToEnd) {
  const std::int64_t P = GetParam();
  const std::int64_t t = 2 * P / 3 + 4;  // a few pattern replicas
  const core::Recommendation rec = core::recommend_pattern(P, core::Kernel::kLu);
  const core::PatternDistribution dist(rec.pattern, t, false, rec.scheme);

  // (a) simulate: message count equals the analytic owner-computes volume.
  sim::MachineConfig machine;
  machine.nodes = P;
  machine.workers_per_node = 2;
  const sim::SimReport report = sim::simulate_lu(t, dist, machine);
  const std::int64_t analytic = core::exact_lu_volume(rec.pattern, t);
  EXPECT_EQ(report.messages, analytic);

  // (b) real distributed run: same count again, correct numerics, and the
  // solve completes the user workflow.
  Rng rng(41);
  const linalg::DenseMatrix a = linalg::diag_dominant_matrix(t * kNb, rng);
  const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);
  const dist::DistRunResult run = dist::distributed_lu(input, dist);
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.tile_messages, analytic);
  EXPECT_LT(linalg::lu_residual(a, run.factored), 1e-12);

  std::vector<double> b(static_cast<std::size_t>(t * kNb));
  for (double& v : b) v = 2.0 * rng.uniform() - 1.0;
  const dist::DistSolveResult solved = dist::distributed_lu_solve(input, b, dist);
  ASSERT_TRUE(solved.ok);
  EXPECT_LT(linalg::solve_residual(a, solved.x, b), 1e-11);
}

TEST_P(PipelineTest, CholeskyEndToEnd) {
  const std::int64_t P = GetParam();
  const std::int64_t t = 2 * P / 3 + 4;
  const core::Recommendation rec =
      core::recommend_pattern(P, core::Kernel::kCholesky, fast_options());
  const core::PatternDistribution dist(rec.pattern, t, true, rec.scheme);

  sim::MachineConfig machine;
  machine.nodes = P;
  machine.workers_per_node = 2;
  const sim::SimReport report = sim::simulate_cholesky(t, dist, machine);
  const std::int64_t analytic = core::exact_cholesky_volume(rec.pattern, t);
  EXPECT_EQ(report.messages, analytic);

  Rng rng(43);
  const linalg::DenseMatrix a = linalg::spd_matrix(t * kNb, rng);
  const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);
  const dist::DistRunResult run = dist::distributed_cholesky(input, dist);
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.tile_messages, analytic);
  EXPECT_LT(linalg::cholesky_residual(a, run.factored), 1e-12);

  std::vector<double> b(static_cast<std::size_t>(t * kNb));
  for (double& v : b) v = 2.0 * rng.uniform() - 1.0;
  const dist::DistSolveResult solved =
      dist::distributed_cholesky_solve(input, b, dist);
  ASSERT_TRUE(solved.ok);
  EXPECT_LT(linalg::solve_residual(a, solved.x, b), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, PipelineTest,
                         ::testing::Values(2, 5, 7, 10, 12));

}  // namespace
}  // namespace anyblock
