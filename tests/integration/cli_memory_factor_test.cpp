// The --memory-factor CLI contract, driven through the real `anyblock`
// binary (path injected by CMake as ANYBLOCK_CLI_PATH).
//
// The replication factor must tile the machine exactly: c < 1, c > P, or
// c not dividing P are configuration errors the user should hear about
// immediately, not schedules to silently round.  Every subcommand that
// accepts the flag — simulate, run, recommend — must reject them with a
// nonzero exit and a message naming the flag, and must keep working for
// valid factors.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace anyblock {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  const std::string command = std::string(ANYBLOCK_CLI_PATH) + " " + args +
                              " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  CliResult result;
  char chunk[4096];
  while (std::fgets(chunk, sizeof chunk, pipe) != nullptr)
    result.output += chunk;
  const int status = pclose(pipe);
  result.exit_code = status < 0 ? status : WEXITSTATUS(status);
  return result;
}

void expect_rejected(const std::string& args) {
  const CliResult result = run_cli(args);
  EXPECT_NE(result.exit_code, 0) << args << "\n" << result.output;
  EXPECT_NE(result.output.find("--memory-factor"), std::string::npos)
      << args << "\n" << result.output;
}

TEST(MemoryFactorCli, SimulateRejectsNonDividingFactor) {
  expect_rejected("simulate --kernel lu --nodes 16 --memory-factor 3 "
                  "--size 64 --tile 4");
}

TEST(MemoryFactorCli, SimulateRejectsFactorAboveNodeCount) {
  expect_rejected("simulate --kernel lu --nodes 16 --memory-factor 32 "
                  "--size 64 --tile 4");
}

TEST(MemoryFactorCli, SimulateRejectsNonPositiveFactor) {
  expect_rejected("simulate --kernel lu --nodes 16 --memory-factor 0 "
                  "--size 64 --tile 4");
  expect_rejected("simulate --kernel lu --nodes 16 --memory-factor -2 "
                  "--size 64 --tile 4");
}

TEST(MemoryFactorCli, RunRejectsNonDividingFactor) {
  expect_rejected("run --kernel lu --nodes 12 --memory-factor 5 --tiles 6");
}

TEST(MemoryFactorCli, RecommendRejectsOddNodeCountAtTwoLayers) {
  expect_rejected("recommend --nodes 23 --memory-factor 2");
}

TEST(MemoryFactorCli, RecommendRejectsAnyBadBatchEntry) {
  // One divisible entry does not excuse the other: the whole batch fails.
  expect_rejected("recommend --batch 46,23 --memory-factor 2");
}

TEST(MemoryFactorCli, SimulateAcceptsAValidFactor) {
  const CliResult result = run_cli(
      "simulate --kernel lu --nodes 16 --memory-factor 2 --size 192 "
      "--tile 4 --seeds 5");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("c=2"), std::string::npos) << result.output;
}

TEST(MemoryFactorCli, RunAcceptsAValidFactorAndVerifiesItself) {
  const CliResult result = run_cli(
      "run --kernel lu --nodes 8 --memory-factor 2 --tiles 8 --tile 4 "
      "--crosscheck");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("verdict     ok"), std::string::npos)
      << result.output;
}

TEST(MemoryFactorCli, RecommendReportsTheStackingInBothFormats) {
  const CliResult text =
      run_cli("recommend --nodes 46 --memory-factor 2 --seeds 5");
  EXPECT_EQ(text.exit_code, 0) << text.output;
  EXPECT_NE(text.output.find("2 layers x 23-node base"), std::string::npos)
      << text.output;
  const CliResult json = run_cli(
      "recommend --nodes 46 --memory-factor 2 --seeds 5 --format json");
  EXPECT_EQ(json.exit_code, 0) << json.output;
  EXPECT_NE(json.output.find("\"memory_factor\":2"), std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("\"base_nodes\":23"), std::string::npos)
      << json.output;
}

}  // namespace
}  // namespace anyblock
