#include "store/winners_table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/cost.hpp"
#include "core/gcrm.hpp"
#include "core/pattern_search.hpp"

namespace anyblock::store {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

WinnersTable sample_table() {
  WinnersTable table;
  core::GcrmSearchOptions options;
  options.seeds = 10;
  table.set_options(options);
  table.add({23, 24, 13317451383556275218ull, 6.0416666666666666});
  table.add({31, 23, 8561350423227967952ull, 7.0434782608695645});
  return table;
}

TEST(WinnersTable, RoundTripPreservesRowsAndOptions) {
  const std::string path = temp_path("winners_roundtrip.tsv");
  const WinnersTable table = sample_table();
  ASSERT_TRUE(table.save_file(path));

  WinnersTable loaded;
  ASSERT_TRUE(loaded.load_file(path)) << loaded.error();
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.max_p(), 31);
  EXPECT_TRUE(loaded.options() == table.options());
  const auto row = loaded.find(23);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->r, 24);
  EXPECT_EQ(row->seed, 13317451383556275218ull);
  EXPECT_EQ(row->cost, 6.0416666666666666);  // hexfloat: bit-exact
  EXPECT_FALSE(loaded.find(24).has_value());
  std::remove(path.c_str());
}

TEST(WinnersTable, DamagedFileIsRejectedWhole) {
  // A shipped artifact is all-or-nothing: any damage rejects the file.
  const std::string path = temp_path("winners_damaged.tsv");
  ASSERT_TRUE(sample_table().save_file(path));
  std::string text = slurp(path);
  const std::size_t at = text.find('\t');
  ASSERT_NE(at, std::string::npos);
  text[at + 1] = '9';
  spit(path, text);

  WinnersTable loaded;
  EXPECT_FALSE(loaded.load_file(path));
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_FALSE(loaded.error().empty());
  std::remove(path.c_str());
}

TEST(WinnersTable, MissingAndForeignVersionRejected) {
  WinnersTable loaded;
  EXPECT_FALSE(loaded.load_file(temp_path("winners_nonexistent.tsv")));
  EXPECT_FALSE(loaded.error().empty());

  const std::string path = temp_path("winners_version.tsv");
  ASSERT_TRUE(sample_table().save_file(path));
  std::string text = slurp(path);
  const std::string header = "anyblock-gcrm-winners 1";
  ASSERT_EQ(text.rfind(header, 0), 0u);
  text.replace(0, header.size(), "anyblock-gcrm-winners 7");
  spit(path, text);
  EXPECT_FALSE(loaded.load_file(path));
  EXPECT_EQ(loaded.size(), 0u);
  std::remove(path.c_str());
}

TEST(WinnersTable, SaveIsAtomic) {
  const std::string path = temp_path("winners_atomic.tsv");
  ASSERT_TRUE(sample_table().save_file(path));
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(WinnersTable, RowsRebuildTheRecordedWinner) {
  // The table's whole point: (P, r, seed) must deterministically rebuild a
  // pattern whose cost equals the recorded one.
  core::GcrmSearchOptions options;
  options.seeds = 10;
  for (const std::int64_t P : {23, 31}) {
    const core::GcrmSearchResult search = core::gcrm_search(P, options);
    ASSERT_TRUE(search.found) << P;
    const core::GcrmResult rebuilt =
        core::gcrm_build(P, search.best_r, search.best_seed);
    ASSERT_TRUE(rebuilt.valid) << P;
    EXPECT_EQ(core::cholesky_cost(rebuilt.pattern), search.best_cost) << P;
    EXPECT_EQ(rebuilt.pattern, search.best) << P;
  }
}

/// Validates the shipped artifact (data/gcrm_winners.tsv) the way
/// core/atlas_artifact_test validates the pattern atlas: loadable, rows
/// rebuild bit-exactly, costs inside the theoretical envelope.  Skips
/// cleanly when absent (source-only checkout).
std::string find_artifact() {
  for (const char* prefix : {"", "../", "../../", "/root/repo/"}) {
    const std::string path = std::string(prefix) + "data/gcrm_winners.tsv";
    if (std::ifstream(path).good()) return path;
  }
  return {};
}

TEST(WinnersArtifact, ShippedRowsRebuildExactly) {
  const std::string path = find_artifact();
  if (path.empty()) GTEST_SKIP() << "data/gcrm_winners.tsv not present";
  WinnersTable table;
  ASSERT_TRUE(table.load_file(path)) << table.error();
  EXPECT_TRUE(table.options() == core::GcrmSearchOptions{})
      << "shipped table must use the default search budget";
  EXPECT_GE(table.max_p(), 64);
  // Spot-rebuild a few rows across the range (a full rebuild is the
  // precompute command's job, not a unit test's).
  for (const std::int64_t P : {2, 13, 23, 40, 64}) {
    SCOPED_TRACE(P);
    const auto row = table.find(P);
    ASSERT_TRUE(row.has_value());
    const core::GcrmResult rebuilt = core::gcrm_build(P, row->r, row->seed);
    ASSERT_TRUE(rebuilt.valid);
    EXPECT_EQ(core::cholesky_cost(rebuilt.pattern), row->cost);
    EXPECT_TRUE(rebuilt.pattern.validate().empty());
  }
}

}  // namespace
}  // namespace anyblock::store
