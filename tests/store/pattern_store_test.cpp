#include "store/pattern_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"

namespace anyblock::store {
namespace {

StoreKey key_for(std::int64_t P, const std::string& metric = "symmetric") {
  StoreKey key;
  key.P = P;
  key.metric = metric;
  return key;
}

StoreEntry entry_for(std::int64_t P) {
  StoreEntry entry;
  entry.pattern = core::make_g2dbc(P);
  entry.scheme = "G-2DBC";
  entry.cost = 2.0 * P + 0.125;  // representable exactly; hexfloat round-trip
  entry.rationale = "test entry for P = " + std::to_string(P);
  return entry;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

TEST(StoreKeyDigest, CanonicalTextIsStable) {
  const StoreKey key = key_for(23);
  // The digest pre-image is part of the on-disk format: pin it.
  EXPECT_EQ(canonical_key_text(key), "v1 symmetric 23 0x1.8p+2 100 42 1");
  EXPECT_EQ(store_digest(key), store_digest(key_for(23)));
  EXPECT_NE(store_digest(key), store_digest(key_for(24)));
  EXPECT_NE(store_digest(key), store_digest(key_for(23, "lu")));

  // Any options change re-keys the entry — a budget change can never serve
  // a stale pattern.
  StoreKey other = key_for(23);
  other.search.seeds = 50;
  EXPECT_NE(store_digest(key), store_digest(other));
  other = key_for(23);
  other.search.base_seed = 43;
  EXPECT_NE(store_digest(key), store_digest(other));
  other = key_for(23);
  other.search.max_r_factor = 5.0;
  EXPECT_NE(store_digest(key), store_digest(other));
}

TEST(PatternStore, InMemoryPutGet) {
  PatternStore cache;
  EXPECT_FALSE(cache.get(key_for(23)).has_value());
  EXPECT_TRUE(cache.put(key_for(23), entry_for(23)));
  const auto hit = cache.get(key_for(23));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pattern, core::make_g2dbc(23));
  EXPECT_EQ(hit->scheme, "G-2DBC");
  EXPECT_EQ(hit->cost, 2.0 * 23 + 0.125);
  const StoreStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
}

TEST(PatternStore, FileRoundTripExact) {
  const std::string path = temp_path("store_roundtrip.db");
  std::remove(path.c_str());
  {
    PatternStore cache(path);
    cache.put(key_for(23), entry_for(23));
    cache.put(key_for(10, "lu"), entry_for(10));
  }
  PatternStore loaded(path);
  EXPECT_EQ(loaded.size(), 2u);
  const auto hit = loaded.get(key_for(23));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pattern, core::make_g2dbc(23));
  EXPECT_EQ(hit->cost, 2.0 * 23 + 0.125);  // hexfloat: bit-exact round-trip
  EXPECT_EQ(hit->rationale, "test entry for P = 23");
  ASSERT_TRUE(loaded.get(key_for(10, "lu")).has_value());
  std::remove(path.c_str());
}

TEST(PatternStore, MissingFileIsEmptyStore) {
  const std::string path = temp_path("store_never_written.db");
  std::remove(path.c_str());
  PatternStore cache(path);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evicted_corrupt, 0);
}

TEST(PatternStore, CorruptRecordIsEvictedOthersSurvive) {
  const std::string path = temp_path("store_corrupt.db");
  std::remove(path.c_str());
  {
    PatternStore cache(path);
    cache.put(key_for(23), entry_for(23));
    cache.put(key_for(31), entry_for(31));
  }
  // Flip one byte inside the FIRST record's rationale text: its CRC fails,
  // the second record still loads.
  std::string manifest = slurp(path);
  const std::size_t at = manifest.find("test entry");
  ASSERT_NE(at, std::string::npos);
  manifest[at] = 'X';
  spit(path, manifest);

  PatternStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.stats().evicted_corrupt, 1);
  // Whichever record was damaged, the surviving one answers correctly.
  const bool first = reloaded.get(key_for(23)).has_value();
  const bool second = reloaded.get(key_for(31)).has_value();
  EXPECT_NE(first, second);
  std::remove(path.c_str());
}

TEST(PatternStore, MangledRecordHeaderDropsTheTail) {
  const std::string path = temp_path("store_desync.db");
  std::remove(path.c_str());
  {
    PatternStore cache(path);
    cache.put(key_for(23), entry_for(23));
  }
  std::string manifest = slurp(path);
  const std::size_t at = manifest.find("entry ");
  ASSERT_NE(at, std::string::npos);
  manifest.replace(at, 6, "wtf!! ");
  spit(path, manifest);

  PatternStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 0u);
  EXPECT_GE(reloaded.stats().evicted_corrupt, 1);
  std::remove(path.c_str());
}

TEST(PatternStore, ForeignVersionIsNeverServed) {
  const std::string path = temp_path("store_version.db");
  std::remove(path.c_str());
  {
    PatternStore cache(path);
    cache.put(key_for(23), entry_for(23));
  }
  std::string manifest = slurp(path);
  const std::string header = "anyblock-pattern-store 1";
  const std::size_t at = manifest.find(header);
  ASSERT_EQ(at, 0u);
  manifest.replace(0, header.size(), "anyblock-pattern-store 9");
  spit(path, manifest);

  PatternStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 0u);
  EXPECT_EQ(reloaded.stats().evicted_version, 1);
  EXPECT_EQ(reloaded.stats().evicted_corrupt, 0);
  std::remove(path.c_str());
}

TEST(PatternStore, TruncatedPayloadIsEvicted) {
  const std::string path = temp_path("store_truncated.db");
  std::remove(path.c_str());
  {
    PatternStore cache(path);
    cache.put(key_for(23), entry_for(23));
  }
  const std::string manifest = slurp(path);
  spit(path, manifest.substr(0, manifest.size() - 10));

  PatternStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 0u);
  EXPECT_GE(reloaded.stats().evicted_corrupt, 1);
  std::remove(path.c_str());
}

TEST(PatternStore, GiantPayloadLengthIsRejected) {
  const std::string path = temp_path("store_giant.db");
  // A forged length field must not trigger a giant allocation.
  spit(path,
       "anyblock-pattern-store 1\n"
       "entry 0123456789abcdef 99999999999999 deadbeef\n");
  PatternStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 0u);
  EXPECT_GE(reloaded.stats().evicted_corrupt, 1);
  std::remove(path.c_str());
}

TEST(PatternStore, PutIsImmediatelyDurable) {
  // put() on a file-backed store flushes via tmp+rename: a fresh reader
  // (a second process in real deployments) sees the entry at once, and no
  // .tmp debris is left behind.
  const std::string path = temp_path("store_durable.db");
  std::remove(path.c_str());
  PatternStore writer(path);
  writer.put(key_for(23), entry_for(23));

  PatternStore reader(path);
  EXPECT_TRUE(reader.get(key_for(23)).has_value());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(PatternStore, ReloadSeesConcurrentWriterState) {
  const std::string path = temp_path("store_reload.db");
  std::remove(path.c_str());
  PatternStore reader(path);
  EXPECT_EQ(reader.size(), 0u);
  {
    PatternStore writer(path);
    writer.put(key_for(23), entry_for(23));
  }
  EXPECT_TRUE(reader.reload());
  EXPECT_EQ(reader.size(), 1u);
  std::remove(path.c_str());
}

TEST(PatternStore, KeysEnumerateContents) {
  PatternStore cache;
  cache.put(key_for(23), entry_for(23));
  cache.put(key_for(10, "lu"), entry_for(10));
  const auto keys = cache.keys();
  EXPECT_EQ(keys.size(), 2u);
  for (const StoreKey& key : keys)
    EXPECT_TRUE(key == key_for(23) || key == key_for(10, "lu"));
}

}  // namespace
}  // namespace anyblock::store
