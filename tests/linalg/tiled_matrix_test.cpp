#include "linalg/tiled_matrix.hpp"

#include <gtest/gtest.h>

#include "linalg/generators.hpp"
#include "util/rng.hpp"

namespace anyblock::linalg {
namespace {

TEST(TiledMatrix, Dimensions) {
  TiledMatrix m(4, 8);
  EXPECT_EQ(m.tiles(), 4);
  EXPECT_EQ(m.tile_size(), 8);
  EXPECT_EQ(m.dim(), 32);
  EXPECT_EQ(m.tile_elems(), 64);
}

TEST(TiledMatrix, TileSpanIsContiguousAndDistinct) {
  TiledMatrix m(3, 4);
  auto t01 = m.tile(0, 1);
  auto t10 = m.tile(1, 0);
  EXPECT_EQ(t01.size(), 16u);
  t01[0] = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 4), 7.0);  // tile (0,1), local (0,0)
  t10[5] = -3.0;
  EXPECT_DOUBLE_EQ(m.at(5, 1), -3.0);  // tile (1,0), local (1,1)
}

TEST(TiledMatrix, ScalarAccessRoundTrip) {
  TiledMatrix m(2, 3);
  double v = 0.0;
  for (std::int64_t i = 0; i < m.dim(); ++i)
    for (std::int64_t j = 0; j < m.dim(); ++j) m.at(i, j) = v++;
  v = 0.0;
  for (std::int64_t i = 0; i < m.dim(); ++i)
    for (std::int64_t j = 0; j < m.dim(); ++j)
      EXPECT_DOUBLE_EQ(m.at(i, j), v++);
}

TEST(TiledMatrix, DenseRoundTrip) {
  Rng rng(3);
  const DenseMatrix dense = random_matrix(12, rng);
  const TiledMatrix tiled = TiledMatrix::from_dense(dense, 3);
  const DenseMatrix back = tiled.to_dense();
  for (std::int64_t i = 0; i < 12; ++i)
    for (std::int64_t j = 0; j < 12; ++j)
      EXPECT_DOUBLE_EQ(back(i, j), dense(i, j));
}

TEST(TiledMatrix, FromDenseRejectsIndivisible) {
  DenseMatrix dense(10, 10);
  EXPECT_THROW(TiledMatrix::from_dense(dense, 3), std::invalid_argument);
}

TEST(TiledMatrix, FromDenseRejectsNonSquare) {
  DenseMatrix dense(10, 8);
  EXPECT_THROW(TiledMatrix::from_dense(dense, 2), std::invalid_argument);
}

TEST(TiledMatrix, InvalidConstruction) {
  EXPECT_THROW(TiledMatrix(0, 4), std::invalid_argument);
  EXPECT_THROW(TiledMatrix(4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::linalg
