#include "linalg/dense_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace anyblock::linalg {
namespace {

TEST(DenseMatrix, ConstructionAndAccess) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(DenseMatrix, FrobeniusNorm) {
  DenseMatrix m(2, 2);
  m(0, 0) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.norm(), 5.0);
}

TEST(DenseMatrix, Subtract) {
  DenseMatrix a(2, 2, 5.0);
  DenseMatrix b(2, 2, 2.0);
  a.subtract(b);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 3.0);
}

TEST(DenseMatrix, SubtractDimensionMismatchThrows) {
  DenseMatrix a(2, 2);
  DenseMatrix b(3, 2);
  EXPECT_THROW(a.subtract(b), std::invalid_argument);
}

TEST(DenseMatrix, MultiplyIdentity) {
  DenseMatrix a(3, 3);
  DenseMatrix id(3, 3);
  for (std::int64_t i = 0; i < 3; ++i) {
    id(i, i) = 1.0;
    for (std::int64_t j = 0; j < 3; ++j)
      a(i, j) = static_cast<double>(i * 3 + j + 1);
  }
  const DenseMatrix c = DenseMatrix::multiply(a, id);
  for (std::int64_t i = 0; i < 3; ++i)
    for (std::int64_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(c(i, j), a(i, j));
}

TEST(DenseMatrix, MultiplyKnownProduct) {
  DenseMatrix a(2, 3);
  DenseMatrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double va = 1.0;
  for (std::int64_t i = 0; i < 2; ++i)
    for (std::int64_t j = 0; j < 3; ++j) a(i, j) = va++;
  double vb = 7.0;
  for (std::int64_t i = 0; i < 3; ++i)
    for (std::int64_t j = 0; j < 2; ++j) b(i, j) = vb++;
  const DenseMatrix c = DenseMatrix::multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(DenseMatrix, Transposed) {
  DenseMatrix a(2, 3);
  a(0, 2) = 5.0;
  a(1, 0) = -1.0;
  const DenseMatrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -1.0);
}

}  // namespace
}  // namespace anyblock::linalg
