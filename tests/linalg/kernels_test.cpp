#include "linalg/kernels.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/generators.hpp"
#include "util/rng.hpp"

namespace anyblock::linalg {
namespace {

constexpr std::int64_t kNb = 8;

std::vector<double> random_tile(Rng& rng, std::int64_t nb = kNb) {
  std::vector<double> tile(static_cast<std::size_t>(nb * nb));
  for (double& v : tile) v = 2.0 * rng.uniform() - 1.0;
  return tile;
}

std::vector<double> diag_dominant_tile(Rng& rng, std::int64_t nb = kNb) {
  auto tile = random_tile(rng, nb);
  for (std::int64_t i = 0; i < nb; ++i)
    tile[static_cast<std::size_t>(i * nb + i)] += static_cast<double>(nb);
  return tile;
}

DenseMatrix as_dense(const std::vector<double>& tile, std::int64_t nb = kNb) {
  DenseMatrix m(nb, nb);
  for (std::int64_t i = 0; i < nb; ++i)
    for (std::int64_t j = 0; j < nb; ++j)
      m(i, j) = tile[static_cast<std::size_t>(i * nb + j)];
  return m;
}

TEST(Kernels, GemmUpdateMatchesReference) {
  Rng rng(1);
  const auto a = random_tile(rng);
  const auto b = random_tile(rng);
  auto c = random_tile(rng);
  const DenseMatrix expected = [&] {
    DenseMatrix e = as_dense(c);
    e.subtract(DenseMatrix::multiply(as_dense(a), as_dense(b)));
    return e;
  }();
  gemm_update(a, b, c, kNb);
  const DenseMatrix got = as_dense(c);
  for (std::int64_t i = 0; i < kNb; ++i)
    for (std::int64_t j = 0; j < kNb; ++j)
      EXPECT_NEAR(got(i, j), expected(i, j), 1e-12);
}

TEST(Kernels, GemmUpdateTransBMatchesReference) {
  Rng rng(2);
  const auto a = random_tile(rng);
  const auto b = random_tile(rng);
  auto c = random_tile(rng);
  const DenseMatrix expected = [&] {
    DenseMatrix e = as_dense(c);
    e.subtract(DenseMatrix::multiply(as_dense(a), as_dense(b).transposed()));
    return e;
  }();
  gemm_update_trans_b(a, b, c, kNb);
  const DenseMatrix got = as_dense(c);
  for (std::int64_t i = 0; i < kNb; ++i)
    for (std::int64_t j = 0; j < kNb; ++j)
      EXPECT_NEAR(got(i, j), expected(i, j), 1e-12);
}

TEST(Kernels, GeneralGemmAlphaBetaTranspose) {
  Rng rng(3);
  const auto a = random_tile(rng);
  const auto b = random_tile(rng);
  auto c = random_tile(rng);
  const DenseMatrix expected = [&] {
    DenseMatrix prod = DenseMatrix::multiply(as_dense(a).transposed(),
                                             as_dense(b).transposed());
    DenseMatrix e = as_dense(c);
    for (std::int64_t i = 0; i < kNb; ++i)
      for (std::int64_t j = 0; j < kNb; ++j)
        e(i, j) = 0.5 * prod(i, j) + 2.0 * e(i, j);
    return e;
  }();
  gemm(0.5, a, /*trans_a=*/true, b, /*trans_b=*/true, 2.0, c, kNb);
  const DenseMatrix got = as_dense(c);
  for (std::int64_t i = 0; i < kNb; ++i)
    for (std::int64_t j = 0; j < kNb; ++j)
      EXPECT_NEAR(got(i, j), expected(i, j), 1e-12);
}

TEST(Kernels, SyrkUpdatesOnlyLowerTriangle) {
  Rng rng(4);
  const auto a = random_tile(rng);
  auto c = random_tile(rng);
  const auto c_before = c;
  syrk_update_lower(a, c, kNb);
  const DenseMatrix aat =
      DenseMatrix::multiply(as_dense(a), as_dense(a).transposed());
  for (std::int64_t i = 0; i < kNb; ++i) {
    for (std::int64_t j = 0; j < kNb; ++j) {
      const auto idx = static_cast<std::size_t>(i * kNb + j);
      if (j <= i) {
        EXPECT_NEAR(c[idx], c_before[idx] - aat(i, j), 1e-12);
      } else {
        EXPECT_DOUBLE_EQ(c[idx], c_before[idx]);  // untouched
      }
    }
  }
}

TEST(Kernels, GetrfReconstructs) {
  Rng rng(5);
  auto a = diag_dominant_tile(rng);
  const DenseMatrix original = as_dense(a);
  ASSERT_TRUE(getrf_nopiv(a, kNb));
  // Rebuild L (unit lower) * U (upper) and compare with the original.
  DenseMatrix l(kNb, kNb);
  DenseMatrix u(kNb, kNb);
  for (std::int64_t i = 0; i < kNb; ++i) {
    l(i, i) = 1.0;
    for (std::int64_t j = 0; j < i; ++j)
      l(i, j) = a[static_cast<std::size_t>(i * kNb + j)];
    for (std::int64_t j = i; j < kNb; ++j)
      u(i, j) = a[static_cast<std::size_t>(i * kNb + j)];
  }
  const DenseMatrix lu = DenseMatrix::multiply(l, u);
  for (std::int64_t i = 0; i < kNb; ++i)
    for (std::int64_t j = 0; j < kNb; ++j)
      EXPECT_NEAR(lu(i, j), original(i, j), 1e-10);
}

TEST(Kernels, GetrfFailsOnZeroPivot) {
  std::vector<double> a(static_cast<std::size_t>(kNb * kNb), 0.0);
  EXPECT_FALSE(getrf_nopiv(a, kNb));
}

TEST(Kernels, PotrfReconstructs) {
  Rng rng(6);
  // Symmetric diagonally dominant tile.
  std::vector<double> a(static_cast<std::size_t>(kNb * kNb));
  for (std::int64_t i = 0; i < kNb; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      const double v = 2.0 * rng.uniform() - 1.0;
      a[static_cast<std::size_t>(i * kNb + j)] = v;
      a[static_cast<std::size_t>(j * kNb + i)] = v;
    }
    a[static_cast<std::size_t>(i * kNb + i)] += static_cast<double>(kNb);
  }
  const DenseMatrix original = as_dense(a);
  ASSERT_TRUE(potrf_lower(a, kNb));
  DenseMatrix l(kNb, kNb);
  for (std::int64_t i = 0; i < kNb; ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      l(i, j) = a[static_cast<std::size_t>(i * kNb + j)];
  const DenseMatrix llt = DenseMatrix::multiply(l, l.transposed());
  for (std::int64_t i = 0; i < kNb; ++i)
    for (std::int64_t j = 0; j < kNb; ++j)
      EXPECT_NEAR(llt(i, j), original(i, j), 1e-10);
}

TEST(Kernels, PotrfRejectsIndefinite) {
  std::vector<double> a(static_cast<std::size_t>(kNb * kNb), 0.0);
  a[0] = -1.0;
  EXPECT_FALSE(potrf_lower(a, kNb));
}

TEST(Kernels, TrsmRightUpperSolves) {
  Rng rng(7);
  auto lu = diag_dominant_tile(rng);
  ASSERT_TRUE(getrf_nopiv(lu, kNb));
  auto b = random_tile(rng);
  const DenseMatrix b0 = as_dense(b);
  trsm_right_upper(lu, b, kNb);
  // Check X * U == B.
  DenseMatrix u(kNb, kNb);
  for (std::int64_t i = 0; i < kNb; ++i)
    for (std::int64_t j = i; j < kNb; ++j)
      u(i, j) = lu[static_cast<std::size_t>(i * kNb + j)];
  const DenseMatrix xu = DenseMatrix::multiply(as_dense(b), u);
  for (std::int64_t i = 0; i < kNb; ++i)
    for (std::int64_t j = 0; j < kNb; ++j)
      EXPECT_NEAR(xu(i, j), b0(i, j), 1e-10);
}

TEST(Kernels, TrsmLeftLowerUnitSolves) {
  Rng rng(8);
  auto lu = diag_dominant_tile(rng);
  ASSERT_TRUE(getrf_nopiv(lu, kNb));
  auto b = random_tile(rng);
  const DenseMatrix b0 = as_dense(b);
  trsm_left_lower_unit(lu, b, kNb);
  DenseMatrix l(kNb, kNb);
  for (std::int64_t i = 0; i < kNb; ++i) {
    l(i, i) = 1.0;
    for (std::int64_t j = 0; j < i; ++j)
      l(i, j) = lu[static_cast<std::size_t>(i * kNb + j)];
  }
  const DenseMatrix lx = DenseMatrix::multiply(l, as_dense(b));
  for (std::int64_t i = 0; i < kNb; ++i)
    for (std::int64_t j = 0; j < kNb; ++j)
      EXPECT_NEAR(lx(i, j), b0(i, j), 1e-10);
}

TEST(Kernels, TrsmRightLowerTransSolves) {
  Rng rng(9);
  // Cholesky factor of a symmetric dominant tile.
  std::vector<double> a(static_cast<std::size_t>(kNb * kNb));
  for (std::int64_t i = 0; i < kNb; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      const double v = 2.0 * rng.uniform() - 1.0;
      a[static_cast<std::size_t>(i * kNb + j)] = v;
      a[static_cast<std::size_t>(j * kNb + i)] = v;
    }
    a[static_cast<std::size_t>(i * kNb + i)] += static_cast<double>(kNb);
  }
  ASSERT_TRUE(potrf_lower(a, kNb));
  auto b = random_tile(rng);
  const DenseMatrix b0 = as_dense(b);
  trsm_right_lower_trans(a, b, kNb);
  DenseMatrix l(kNb, kNb);
  for (std::int64_t i = 0; i < kNb; ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      l(i, j) = a[static_cast<std::size_t>(i * kNb + j)];
  const DenseMatrix xlt = DenseMatrix::multiply(as_dense(b), l.transposed());
  for (std::int64_t i = 0; i < kNb; ++i)
    for (std::int64_t j = 0; j < kNb; ++j)
      EXPECT_NEAR(xlt(i, j), b0(i, j), 1e-10);
}

TEST(Kernels, FlopCountsScaleCubically) {
  EXPECT_DOUBLE_EQ(gemm_flops(10), 2000.0);
  EXPECT_DOUBLE_EQ(trsm_flops(10), 1000.0);
  EXPECT_NEAR(getrf_flops(10), 2000.0 / 3.0, 1e-9);
  EXPECT_NEAR(potrf_flops(10), 1000.0 / 3.0, 1e-9);
  EXPECT_GT(syrk_flops(10), 1000.0);
  EXPECT_NEAR(lu_total_flops(100), 2.0 / 3.0 * 1e6, 1e-6);
  EXPECT_NEAR(cholesky_total_flops(100), 1e6 / 3.0, 1e-6);
}

}  // namespace
}  // namespace anyblock::linalg
