#include <gtest/gtest.h>

#include "linalg/factorizations.hpp"
#include "linalg/generators.hpp"
#include "linalg/tiled_panel.hpp"
#include "util/rng.hpp"

namespace anyblock::linalg {
namespace {

DenseMatrix random_dense(std::int64_t rows, std::int64_t cols, Rng& rng) {
  DenseMatrix m(rows, cols);
  for (std::int64_t i = 0; i < rows; ++i)
    for (std::int64_t j = 0; j < cols; ++j)
      m(i, j) = 2.0 * rng.uniform() - 1.0;
  return m;
}

TEST(TiledPanel, RoundTripAndAccess) {
  Rng rng(1);
  const DenseMatrix dense = random_dense(12, 8, rng);
  const TiledPanel panel = TiledPanel::from_dense(dense, 4);
  EXPECT_EQ(panel.tile_rows(), 3);
  EXPECT_EQ(panel.tile_cols(), 2);
  const DenseMatrix back = panel.to_dense();
  for (std::int64_t i = 0; i < 12; ++i)
    for (std::int64_t j = 0; j < 8; ++j)
      EXPECT_DOUBLE_EQ(back(i, j), dense(i, j));
}

TEST(TiledPanel, RejectsIndivisible) {
  DenseMatrix dense(10, 8);
  EXPECT_THROW(TiledPanel::from_dense(dense, 4), std::invalid_argument);
  EXPECT_THROW(TiledPanel(0, 2, 4), std::invalid_argument);
}

struct SyrkCase {
  std::int64_t t;
  std::int64_t k;
  std::int64_t nb;
  std::uint64_t seed;
};

class TiledSyrkTest : public ::testing::TestWithParam<SyrkCase> {};

TEST_P(TiledSyrkTest, MatchesDenseReference) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const DenseMatrix a_dense =
      random_dense(param.t * param.nb, param.k * param.nb, rng);
  const DenseMatrix c_dense = [&] {
    DenseMatrix m = random_dense(param.t * param.nb, param.t * param.nb, rng);
    // Symmetrize so the lower triangle is self-consistent.
    for (std::int64_t i = 0; i < m.rows(); ++i)
      for (std::int64_t j = 0; j < i; ++j) m(j, i) = m(i, j);
    return m;
  }();

  const TiledPanel a = TiledPanel::from_dense(a_dense, param.nb);
  TiledMatrix c = TiledMatrix::from_dense(c_dense, param.nb);
  tiled_syrk(a, c);

  DenseMatrix expected = c_dense;
  expected.subtract(DenseMatrix::multiply(a_dense, a_dense.transposed()));
  for (std::int64_t i = 0; i < expected.rows(); ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      EXPECT_NEAR(c.at(i, j), expected(i, j), 1e-10)
          << "(" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(Shapes, TiledSyrkTest,
                         ::testing::Values(SyrkCase{1, 1, 4, 1},
                                           SyrkCase{3, 2, 4, 2},
                                           SyrkCase{4, 4, 3, 3},
                                           SyrkCase{2, 5, 6, 4},
                                           SyrkCase{6, 1, 5, 5}));

TEST(TiledSyrk, LeavesUpperTriangleUntouched) {
  Rng rng(9);
  const TiledPanel a = TiledPanel::from_dense(random_dense(8, 4, rng), 4);
  TiledMatrix c = TiledMatrix::from_dense(random_dense(8, 8, rng), 4);
  const double before = c.at(0, 7);
  tiled_syrk(a, c);
  EXPECT_DOUBLE_EQ(c.at(0, 7), before);
}

TEST(TiledSyrk, RejectsShapeMismatch) {
  TiledPanel a(3, 2, 4);
  TiledMatrix c(2, 4);
  EXPECT_THROW(tiled_syrk(a, c), std::invalid_argument);
  TiledMatrix c2(3, 5);
  EXPECT_THROW(tiled_syrk(a, c2), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::linalg
