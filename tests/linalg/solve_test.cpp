#include "linalg/solve.hpp"

#include <gtest/gtest.h>

#include "linalg/factorizations.hpp"
#include "linalg/generators.hpp"
#include "util/rng.hpp"

namespace anyblock::linalg {
namespace {

std::vector<double> random_vector(std::int64_t n, Rng& rng) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = 2.0 * rng.uniform() - 1.0;
  return v;
}

struct SolveCase {
  std::int64_t tiles;
  std::int64_t nb;
  std::uint64_t seed;
};

class LuSolveTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(LuSolveTest, SolvesLinearSystem) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const std::int64_t n = param.tiles * param.nb;
  const DenseMatrix a = diag_dominant_matrix(n, rng);
  const std::vector<double> b = random_vector(n, rng);

  TiledMatrix factored = TiledMatrix::from_dense(a, param.nb);
  ASSERT_TRUE(tiled_lu_nopiv(factored));
  const std::vector<double> x = lu_solve(factored, b);
  EXPECT_LT(solve_residual(a, x, b), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSolveTest,
                         ::testing::Values(SolveCase{1, 4, 1},
                                           SolveCase{2, 8, 2},
                                           SolveCase{5, 6, 3},
                                           SolveCase{8, 5, 4}));

class CholeskySolveTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(CholeskySolveTest, SolvesSpdSystem) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const std::int64_t n = param.tiles * param.nb;
  const DenseMatrix a = spd_matrix(n, rng);
  const std::vector<double> b = random_vector(n, rng);

  TiledMatrix factored = TiledMatrix::from_dense(a, param.nb);
  ASSERT_TRUE(tiled_cholesky(factored));
  const std::vector<double> x = cholesky_solve(factored, b);
  EXPECT_LT(solve_residual(a, x, b), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySolveTest,
                         ::testing::Values(SolveCase{1, 4, 11},
                                           SolveCase{2, 8, 12},
                                           SolveCase{5, 6, 13},
                                           SolveCase{8, 5, 14}));

TEST(Solve, IdentitySolveReturnsRhs) {
  // A = I: the packed LU of the identity is the identity.
  const std::int64_t n = 8;
  DenseMatrix eye(n, n);
  for (std::int64_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  TiledMatrix factored = TiledMatrix::from_dense(eye, 4);
  ASSERT_TRUE(tiled_lu_nopiv(factored));
  Rng rng(5);
  const std::vector<double> b = random_vector(n, rng);
  const std::vector<double> x = lu_solve(factored, b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(Solve, TriangularPiecesAgreeWithFullSolve) {
  Rng rng(6);
  const std::int64_t n = 12;
  const DenseMatrix a = spd_matrix(n, rng);
  TiledMatrix l = TiledMatrix::from_dense(a, 4);
  ASSERT_TRUE(tiled_cholesky(l));
  std::vector<double> b = random_vector(n, rng);
  std::vector<double> staged = b;
  forward_substitute(l, staged);
  backward_substitute_trans(l, staged);
  const std::vector<double> direct = cholesky_solve(l, b);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_DOUBLE_EQ(staged[i], direct[i]);
}

TEST(Solve, RejectsWrongLength) {
  TiledMatrix m(2, 4);
  std::vector<double> x(7, 0.0);
  EXPECT_THROW(forward_substitute_unit(m, x), std::invalid_argument);
  EXPECT_THROW(lu_solve(m, x), std::invalid_argument);
}

TEST(Solve, ResidualRejectsMismatch) {
  DenseMatrix a(3, 3);
  EXPECT_THROW(
      solve_residual(a, std::vector<double>(2), std::vector<double>(3)),
      std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::linalg
