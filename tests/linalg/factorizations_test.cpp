#include "linalg/factorizations.hpp"

#include <gtest/gtest.h>

#include "linalg/generators.hpp"
#include "linalg/verify.hpp"
#include "util/rng.hpp"

namespace anyblock::linalg {
namespace {

struct GridCase {
  std::int64_t tiles;
  std::int64_t nb;
  std::uint64_t seed;
};

class TiledLuTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(TiledLuTest, ResidualIsSmall) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const DenseMatrix original =
      diag_dominant_matrix(param.tiles * param.nb, rng);
  TiledMatrix a = TiledMatrix::from_dense(original, param.nb);
  ASSERT_TRUE(tiled_lu_nopiv(a));
  EXPECT_LT(lu_residual(original, a), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grids, TiledLuTest,
                         ::testing::Values(GridCase{1, 8, 1},
                                           GridCase{2, 8, 2},
                                           GridCase{3, 5, 3},
                                           GridCase{4, 4, 4},
                                           GridCase{5, 7, 5},
                                           GridCase{8, 3, 6}));

class TiledCholeskyTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(TiledCholeskyTest, ResidualIsSmall) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const DenseMatrix original = spd_matrix(param.tiles * param.nb, rng);
  TiledMatrix a = TiledMatrix::from_dense(original, param.nb);
  ASSERT_TRUE(tiled_cholesky(a));
  EXPECT_LT(cholesky_residual(original, a), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grids, TiledCholeskyTest,
                         ::testing::Values(GridCase{1, 8, 11},
                                           GridCase{2, 8, 12},
                                           GridCase{3, 5, 13},
                                           GridCase{4, 4, 14},
                                           GridCase{5, 7, 15},
                                           GridCase{8, 3, 16}));

TEST(TiledLu, MatchesDenseEliminationOnSmallCase) {
  // 2x2 tiles of size 2: LU of the tiled algorithm must equal LU of the
  // plain dense algorithm (no pivoting in either).
  Rng rng(21);
  const DenseMatrix original = diag_dominant_matrix(4, rng);
  TiledMatrix tiled = TiledMatrix::from_dense(original, 2);
  ASSERT_TRUE(tiled_lu_nopiv(tiled));

  // Dense reference elimination.
  DenseMatrix dense = original;
  for (std::int64_t k = 0; k < 4; ++k) {
    for (std::int64_t i = k + 1; i < 4; ++i) {
      dense(i, k) /= dense(k, k);
      for (std::int64_t j = k + 1; j < 4; ++j)
        dense(i, j) -= dense(i, k) * dense(k, j);
    }
  }
  for (std::int64_t i = 0; i < 4; ++i)
    for (std::int64_t j = 0; j < 4; ++j)
      EXPECT_NEAR(tiled.at(i, j), dense(i, j), 1e-11);
}

TEST(TiledCholesky, FailsGracefullyOnIndefinite) {
  TiledMatrix a(2, 4);  // all zeros: not positive definite
  EXPECT_FALSE(tiled_cholesky(a));
}

TEST(TiledLu, FailsGracefullyOnSingular) {
  TiledMatrix a(2, 4);  // all zeros: singular
  EXPECT_FALSE(tiled_lu_nopiv(a));
}

TEST(Generators, SpdMatrixIsSymmetric) {
  Rng rng(31);
  const DenseMatrix m = spd_matrix(16, rng);
  for (std::int64_t i = 0; i < 16; ++i)
    for (std::int64_t j = 0; j < 16; ++j)
      EXPECT_DOUBLE_EQ(m(i, j), m(j, i));
}

TEST(Generators, DiagDominantHasHeavyDiagonal) {
  Rng rng(32);
  const std::int64_t n = 20;
  const DenseMatrix m = diag_dominant_matrix(n, rng);
  for (std::int64_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::int64_t j = 0; j < n; ++j)
      if (j != i) off += std::abs(m(i, j));
    EXPECT_GT(std::abs(m(i, i)), off);
  }
}

}  // namespace
}  // namespace anyblock::linalg
