// The obs subsystem's contract: what the recorder captures is exactly what
// the exporters write, and for a real distributed run the captured comm
// events agree with the vmpi traffic counters AND the closed-form message
// counts of core/cost — the same three-way agreement the integration tests
// assert on raw counters, now validated through the trace path.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/distribution.hpp"
#include "core/g2dbc.hpp"
#include "dist/dist_factorization.hpp"
#include "linalg/generators.hpp"
#include "linalg/tiled_matrix.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace anyblock::obs {
namespace {

std::int64_t count_substring(const std::string& haystack,
                            const std::string& needle) {
  std::int64_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(Recorder, TracksAreStableAndTakeDrainsEvents) {
  Recorder recorder;
  TrackSink* a = recorder.track("alpha");
  TrackSink* b = recorder.track("beta");
  Event event;
  event.kind = EventKind::kTask;
  event.name = "t0";
  event.start_seconds = 1.0;
  event.end_seconds = 2.0;
  a->record(event);
  event.name = "t1";
  b->record(event);

  Trace trace = recorder.take();
  ASSERT_EQ(trace.tracks.size(), 2u);
  EXPECT_EQ(trace.tracks[0].name, "alpha");
  EXPECT_EQ(trace.tracks[1].name, "beta");
  EXPECT_EQ(trace.count(EventKind::kTask), 2);

  // Sinks survive take(): recording continues into a fresh trace.
  event.name = "t2";
  a->record(event);
  Trace second = recorder.take();
  EXPECT_EQ(second.count(EventKind::kTask), 1);
  EXPECT_EQ(second.tracks[0].events[0].name, "t2");
}

TEST(Recorder, FlowIdsAreUnique) {
  Recorder recorder;
  const std::uint64_t first = recorder.next_flow();
  const std::uint64_t second = recorder.next_flow();
  EXPECT_NE(first, second);
}

TEST(ChromeTrace, EmitsMetadataCompleteAndFlowEvents) {
  Recorder recorder;
  TrackSink* sender = recorder.track("rank 0");
  TrackSink* receiver = recorder.track("rank 1");
  const std::uint64_t flow = recorder.next_flow();

  Event send;
  send.kind = EventKind::kSend;
  send.source = 0;
  send.dest = 1;
  send.tag = 7;
  send.bytes = 128;
  send.flow = flow;
  send.start_seconds = 0.5;
  send.end_seconds = 0.5;
  sender->record(send);

  Event recv = send;
  recv.kind = EventKind::kRecv;
  recv.start_seconds = 1.5;
  recv.end_seconds = 1.5;
  receiver->record(recv);

  std::ostringstream out;
  write_chrome_trace(out, recorder.take());
  const std::string json = out.str();

  // One thread_name metadata record per track, matching tid assignment.
  EXPECT_EQ(count_substring(json, "\"thread_name\""), 2);
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  // One X event per send/recv, one s/f flow pair binding them.
  EXPECT_EQ(count_substring(json, "\"ph\":\"X\""), 2);
  EXPECT_EQ(count_substring(json, "\"ph\":\"s\""), 1);
  EXPECT_EQ(count_substring(json, "\"ph\":\"f\""), 1);
  EXPECT_NE(json.find("\"cat\":\"vmpi.send\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"vmpi.recv\""), std::string::npos);
  EXPECT_NE(json.find("\"tag\":7"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":128"), std::string::npos);
}

TEST(ChromeTrace, EscapesControlCharactersInNames) {
  Recorder recorder;
  TrackSink* sink = recorder.track("track \"q\"\n");
  Event event;
  event.kind = EventKind::kTask;
  event.name = "bad\\name";
  sink->record(event);
  std::ostringstream out;
  write_chrome_trace(out, recorder.take());
  const std::string json = out.str();
  EXPECT_NE(json.find("track \\\"q\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("bad\\\\name"), std::string::npos);
}

TEST(Metrics, BusyFractionMergesOverlappingTasks) {
  // Two fully-overlapping one-second tasks on one track must count as one
  // second of busy time, not two (a sim node track runs many workers).
  Recorder recorder;
  TrackSink* sink = recorder.track("node 0");
  Event event;
  event.kind = EventKind::kSimTask;
  event.start_seconds = 0.0;
  event.end_seconds = 1.0;
  sink->record(event);
  sink->record(event);
  // A later task extends the span to 2s; busy is 1.5s total.
  event.start_seconds = 1.5;
  event.end_seconds = 2.0;
  sink->record(event);

  std::ostringstream out;
  write_metrics_csv(out, recorder.take(), {});
  const std::string csv = out.str();
  EXPECT_NE(csv.find("track,node 0,tasks,3"), std::string::npos);
  EXPECT_NE(csv.find("track,node 0,busy_seconds,1.5"), std::string::npos);
  EXPECT_NE(csv.find("track,node 0,busy_fraction,0.75"), std::string::npos);
}

TEST(Metrics, MeasuredVersusPredictedUsesTagBound) {
  Recorder recorder;
  TrackSink* sink = recorder.track("rank 0");
  Event send;
  send.kind = EventKind::kSend;
  send.bytes = 8;
  send.tag = 3;  // inside the factorization band
  sink->record(send);
  send.tag = 100;  // gather band: excluded from measured_messages
  sink->record(send);

  MetricsOptions options;
  options.predicted_messages = 1;
  options.message_tag_bound = 10;
  std::ostringstream out;
  write_metrics_csv(out, recorder.take(), options);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("summary,total,messages_sent,2"), std::string::npos);
  EXPECT_NE(csv.find("summary,total,measured_messages,1"), std::string::npos);
  EXPECT_NE(csv.find("summary,total,predicted_messages,1"),
            std::string::npos);
  EXPECT_NE(csv.find("summary,total,measured_over_predicted,1"),
            std::string::npos);
}

/// One traced distributed LU; returns (trace, report, predicted) checks.
void check_traced_lu(const core::Pattern& pattern, std::int64_t t) {
  constexpr std::int64_t kNb = 4;
  const core::PatternDistribution distribution(pattern, t,
                                               /*symmetric=*/false);
  Rng rng(11);
  const linalg::TiledMatrix input = linalg::tiled_diag_dominant(t, kNb, rng);

  Recorder recorder;
  const dist::DistRunResult result =
      dist::distributed_lu(input, distribution, {}, &recorder);
  ASSERT_TRUE(result.ok);
  const Trace trace = recorder.take();

  // One track per rank, named by the vmpi layer.
  ASSERT_EQ(trace.tracks.size(),
            static_cast<std::size_t>(pattern.num_nodes()));
  EXPECT_EQ(trace.tracks[0].name, "rank 0");

  // Recorded sends/recvs equal the vmpi traffic counters, per rank and in
  // total (gather included on both sides of the comparison).
  std::int64_t sends = 0;
  std::int64_t recvs = 0;
  for (std::size_t r = 0; r < trace.tracks.size(); ++r) {
    std::int64_t rank_sends = 0;
    std::int64_t rank_recvs = 0;
    for (const Event& event : trace.tracks[r].events) {
      if (event.kind == EventKind::kSend) ++rank_sends;
      if (event.kind == EventKind::kRecv) ++rank_recvs;
    }
    EXPECT_EQ(rank_sends, result.report.per_rank[r].messages_sent);
    EXPECT_EQ(rank_recvs, result.report.per_rank[r].messages_received);
    sends += rank_sends;
    recvs += rank_recvs;
  }
  EXPECT_EQ(sends, result.report.total_messages());
  EXPECT_EQ(recvs, result.report.total_messages_received());

  // Factorization-proper sends (tags below t*t; the gather uses the band
  // above) equal the closed-form count of core/cost.
  std::int64_t factorization_sends = 0;
  for (const Track& track : trace.tracks)
    for (const Event& event : track.events)
      if (event.kind == EventKind::kSend && event.tag < t * t)
        ++factorization_sends;
  EXPECT_EQ(factorization_sends, result.tile_messages);
  EXPECT_EQ(factorization_sends,
            core::exact_lu_messages(distribution, t, {}));

  // The Chrome export carries every event: one X per send+recv, one s/f
  // flow pair per message, one metadata record per rank.
  std::ostringstream out;
  write_chrome_trace(out, trace);
  const std::string json = out.str();
  EXPECT_EQ(count_substring(json, "\"cat\":\"vmpi.send\""), sends);
  EXPECT_EQ(count_substring(json, "\"cat\":\"vmpi.recv\""), recvs);
  EXPECT_EQ(count_substring(json, "\"ph\":\"s\""), sends);
  EXPECT_EQ(count_substring(json, "\"ph\":\"f\""), recvs);
  EXPECT_EQ(count_substring(json, "\"thread_name\""),
            static_cast<std::int64_t>(trace.tracks.size()));
}

TEST(TracedRun, LuEventCountsMatchTrafficAndPredictionP5) {
  check_traced_lu(core::make_g2dbc(5), /*t=*/8);
}

// The acceptance case: P=23 G-2DBC, trace counts == TrafficStats ==
// exact closed form.
TEST(TracedRun, LuEventCountsMatchTrafficAndPredictionP23) {
  check_traced_lu(core::make_g2dbc(23), /*t=*/23);
}

TEST(TracedRun, SimulatorTransfersEqualReportedMessages) {
  const std::int64_t t = 12;
  const core::Pattern pattern = core::make_g2dbc(7);
  const core::PatternDistribution distribution(pattern, t,
                                               /*symmetric=*/false);
  Recorder recorder;
  sim::MachineConfig machine;
  machine.nodes = pattern.num_nodes();
  machine.recorder = &recorder;
  const sim::SimReport report = sim::simulate_lu(t, distribution, machine);
  const Trace trace = recorder.take();
  EXPECT_EQ(trace.count(EventKind::kSimTransfer), report.messages);
  EXPECT_GT(trace.count(EventKind::kSimTask), 0);
}

}  // namespace
}  // namespace anyblock::obs
