#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace anyblock::obs {
namespace {

TEST(LatencyHistogram, EmptyIsAllZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean_seconds(), 0.0);
  EXPECT_EQ(h.quantile_seconds(0.5), 0.0);
  EXPECT_EQ(h.max_seconds(), 0.0);
}

TEST(LatencyHistogram, TracksCountMinMaxMean) {
  LatencyHistogram h;
  h.record_seconds(1e-6);
  h.record_seconds(3e-6);
  h.record_seconds(8e-6);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 8e-6);
  EXPECT_DOUBLE_EQ(h.mean_seconds(), 4e-6);
}

TEST(LatencyHistogram, QuantileWithinOneBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record_seconds(2e-6);   // bucket [2, 4) us
  h.record_seconds(1e-3);                                // ~2^10 us
  // p50 sits in the [2, 4) us bucket: upper edge 4 us.
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.5), 4e-6);
  // p100 covers the single slow sample; its bucket edge is >= 1 ms.
  EXPECT_GE(h.quantile_seconds(1.0), 1e-3);
  // The slow outlier must not drag p50 upward.
  EXPECT_LT(h.quantile_seconds(0.5), 1e-5);
}

TEST(LatencyHistogram, ExtremeSamplesAreNotDropped) {
  LatencyHistogram h;
  h.record_seconds(0.0);       // sub-microsecond → first bucket
  h.record_seconds(1e-9);
  h.record_seconds(1e6);       // ~11.5 days → open-ended last bucket
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 1e6);
}

TEST(LatencyHistogram, MetricRowsCarryPrefix) {
  LatencyHistogram h;
  h.record_seconds(5e-6);
  const auto rows = h.metric_rows("serve_warm");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].first, "serve_warm_count");
  EXPECT_DOUBLE_EQ(rows[0].second, 1.0);
  EXPECT_EQ(rows[1].first, "serve_warm_mean_us");
  EXPECT_DOUBLE_EQ(rows[1].second, 5.0);
  EXPECT_EQ(rows[2].first, "serve_warm_p50_us");
  EXPECT_EQ(rows[3].first, "serve_warm_p99_us");
  EXPECT_EQ(rows[4].first, "serve_warm_max_us");
}

TEST(LatencyHistogram, ConcurrentRecordingIsExact) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&h] {
      for (int j = 0; j < kPerThread; ++j) h.record_seconds(1e-6);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // The sum accumulates rounding over 40k adds; exact to ~1e-12 is plenty.
  EXPECT_NEAR(h.mean_seconds(), 1e-6, 1e-11);
}

}  // namespace
}  // namespace anyblock::obs
