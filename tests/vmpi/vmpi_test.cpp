#include "vmpi/vmpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace anyblock::vmpi {
namespace {

TEST(Vmpi, SingleRankRuns) {
  std::atomic<int> calls{0};
  const RunReport report = run_ranks(1, [&](RankContext& ctx) {
    EXPECT_EQ(ctx.rank(), 0);
    EXPECT_EQ(ctx.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(report.total_messages(), 0);
}

TEST(Vmpi, RejectsZeroRanks) {
  EXPECT_THROW(run_ranks(0, [](RankContext&) {}), std::invalid_argument);
}

TEST(Vmpi, PingPong) {
  run_ranks(2, [](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 7, {1.0, 2.0, 3.0});
      const Payload reply = ctx.recv(1, 8);
      ASSERT_EQ(reply.size(), 3u);
      EXPECT_DOUBLE_EQ(reply[0], 2.0);
      EXPECT_DOUBLE_EQ(reply[2], 6.0);
    } else {
      Payload data = ctx.recv(0, 7);
      for (double& v : data) v *= 2.0;
      ctx.send(0, 8, std::move(data));
    }
  });
}

TEST(Vmpi, TagMatchingIsSelective) {
  // Rank 1 sends two tags; rank 0 receives them in the opposite order.
  run_ranks(2, [](RankContext& ctx) {
    if (ctx.rank() == 1) {
      ctx.send(0, 100, {100.0});
      ctx.send(0, 200, {200.0});
    } else {
      const Payload second = ctx.recv(1, 200);
      const Payload first = ctx.recv(1, 100);
      EXPECT_DOUBLE_EQ(second[0], 200.0);
      EXPECT_DOUBLE_EQ(first[0], 100.0);
    }
  });
}

TEST(Vmpi, SameTagDeliveredInSendOrder) {
  run_ranks(2, [](RankContext& ctx) {
    if (ctx.rank() == 1) {
      for (int k = 0; k < 5; ++k)
        ctx.send(0, 9, {static_cast<double>(k)});
    } else {
      for (int k = 0; k < 5; ++k) {
        const Payload data = ctx.recv(1, 9);
        EXPECT_DOUBLE_EQ(data[0], static_cast<double>(k));
      }
    }
  });
}

TEST(Vmpi, AnySourceReceivesFromEveryone) {
  constexpr int kRanks = 5;
  run_ranks(kRanks, [](RankContext& ctx) {
    if (ctx.rank() == 0) {
      double sum = 0.0;
      for (int k = 1; k < kRanks; ++k) sum += ctx.recv(kAnySource, 3)[0];
      EXPECT_DOUBLE_EQ(sum, 1.0 + 2.0 + 3.0 + 4.0);
    } else {
      ctx.send(0, 3, {static_cast<double>(ctx.rank())});
    }
  });
}

TEST(Vmpi, BarrierSynchronizes) {
  constexpr int kRanks = 4;
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  run_ranks(kRanks, [&](RankContext& ctx) {
    ++before;
    ctx.barrier();
    if (before.load() != kRanks) violated = true;
    ctx.barrier();  // barriers are reusable
    ctx.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(Vmpi, Broadcast) {
  run_ranks(4, [](RankContext& ctx) {
    Payload data;
    if (ctx.rank() == 2) data = {5.0, 6.0};
    const Payload result = ctx.broadcast(2, data);
    ASSERT_EQ(result.size(), 2u);
    EXPECT_DOUBLE_EQ(result[0], 5.0);
    EXPECT_DOUBLE_EQ(result[1], 6.0);
  });
}

TEST(Vmpi, AllreduceSum) {
  constexpr int kRanks = 6;
  run_ranks(kRanks, [](RankContext& ctx) {
    const Payload result =
        ctx.allreduce_sum({static_cast<double>(ctx.rank()), 1.0});
    EXPECT_DOUBLE_EQ(result[0], 15.0);  // 0+1+...+5
    EXPECT_DOUBLE_EQ(result[1], 6.0);
  });
}

TEST(Vmpi, TrafficCountersPerRank) {
  const RunReport report = run_ranks(3, [](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 1, {1.0, 2.0});
      ctx.send(2, 1, {1.0, 2.0, 3.0});
    } else {
      (void)ctx.recv(0, 1);
    }
  });
  EXPECT_EQ(report.per_rank[0].messages_sent, 2);
  EXPECT_EQ(report.per_rank[0].doubles_sent, 5);
  EXPECT_EQ(report.per_rank[1].messages_sent, 0);
  EXPECT_EQ(report.total_messages(), 2);
  EXPECT_EQ(report.total_doubles(), 5);
}

TEST(Vmpi, RankBodyExceptionPropagates) {
  EXPECT_THROW(run_ranks(2,
                         [](RankContext& ctx) {
                           if (ctx.rank() == 1)
                             throw std::runtime_error("rank failure");
                         }),
               std::runtime_error);
}

}  // namespace
}  // namespace anyblock::vmpi
