// Randomized stress tests for the message-passing layer: many ranks, many
// tags, interleaved out-of-order receives — checksum-verified.
#include <gtest/gtest.h>

#include <atomic>

#include "util/rng.hpp"
#include "vmpi/vmpi.hpp"

namespace anyblock::vmpi {
namespace {

TEST(VmpiStress, AllToAllWithPerPairChecksums) {
  constexpr int kRanks = 8;
  constexpr int kMessagesPerPair = 25;
  std::atomic<std::int64_t> mismatches{0};

  const RunReport report = run_ranks(kRanks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    // Send kMessagesPerPair payloads to every other rank, tagged by
    // sequence; the payload encodes (source, destination, sequence).
    for (int dest = 0; dest < kRanks; ++dest) {
      if (dest == self) continue;
      for (int seq = 0; seq < kMessagesPerPair; ++seq) {
        ctx.send(dest, seq,
                 {static_cast<double>(self), static_cast<double>(dest),
                  static_cast<double>(seq)});
      }
    }
    // Receive in a scrambled order: sequences descending, sources rotated.
    // Each rank draws from its own split stream — additive seeds would give
    // the ranks correlated (shifted) schedules.
    Rng rng = Rng::for_stream(99, static_cast<std::uint64_t>(self));
    for (int seq = kMessagesPerPair - 1; seq >= 0; --seq) {
      for (int offset = 1; offset < kRanks; ++offset) {
        const int source = (self + offset) % kRanks;
        const Payload data = ctx.recv(source, seq);
        if (data.size() != 3 || data[0] != source || data[1] != self ||
            data[2] != seq) {
          ++mismatches;
        }
      }
    }
  });

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(report.total_messages(),
            static_cast<std::int64_t>(kRanks) * (kRanks - 1) *
                kMessagesPerPair);
}

TEST(VmpiStress, RingPipelineManyRounds) {
  constexpr int kRanks = 6;
  constexpr int kRounds = 200;
  run_ranks(kRanks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    const int next = (self + 1) % kRanks;
    const int prev = (self + kRanks - 1) % kRanks;
    double token = self;
    for (int round = 0; round < kRounds; ++round) {
      ctx.send(next, round, {token});
      token = ctx.recv(prev, round)[0] + 1.0;
    }
    // Each round the token advances one hop and gains +1; after kRounds
    // rounds, rank r holds the value started by rank (r - kRounds) mod P
    // plus kRounds.
    const double expected =
        static_cast<double>((self - kRounds % kRanks + kRanks) % kRanks) +
        kRounds;
    EXPECT_DOUBLE_EQ(token, expected);
  });
}

TEST(VmpiStress, BarrierStorm) {
  constexpr int kRanks = 8;
  std::atomic<std::int64_t> counter{0};
  std::atomic<bool> violated{false};
  run_ranks(kRanks, [&](RankContext& ctx) {
    for (int round = 0; round < 100; ++round) {
      ++counter;
      ctx.barrier();
      // Between two barriers every rank must observe the same multiple.
      if (counter.load() != static_cast<std::int64_t>(kRanks) * (round + 1))
        violated = true;
      ctx.barrier();
    }
  });
  EXPECT_FALSE(violated.load());
}

TEST(VmpiStress, AnySourceHammeringKeepsPerPairFifoAndLosesNothing) {
  // Every rank blasts kPerTag messages per (destination, tag) pair, then
  // drains its mailbox with recv(kAnySource, tag) in a seed-scrambled tag
  // order.  The any-source wildcard must still honor the per-(source, tag)
  // FIFO guarantee — sequence numbers from one source on one tag arrive in
  // send order — and no message may be lost or duplicated.
  constexpr int kRanks = 8;
  constexpr int kTags = 5;
  constexpr int kPerTag = 40;
  std::atomic<std::int64_t> violations{0};

  const RunReport report = run_ranks(kRanks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    for (int seq = 0; seq < kPerTag; ++seq) {
      for (int dest = 0; dest < kRanks; ++dest) {
        if (dest == self) continue;
        for (int tag = 0; tag < kTags; ++tag) {
          ctx.send(dest, tag,
                   {static_cast<double>(self), static_cast<double>(tag),
                    static_cast<double>(seq)});
        }
      }
    }

    Rng rng = Rng::for_stream(13, static_cast<std::uint64_t>(self));
    std::vector<int> remaining(kTags, (kRanks - 1) * kPerTag);
    // next expected sequence per (source, tag)
    std::vector<std::vector<int>> next(
        kRanks, std::vector<int>(kTags, 0));
    int total = kTags * (kRanks - 1) * kPerTag;
    while (total > 0) {
      int tag = static_cast<int>(rng.below(kTags));
      while (remaining[static_cast<std::size_t>(tag)] == 0)
        tag = (tag + 1) % kTags;
      const Payload data = ctx.recv(kAnySource, tag);
      --remaining[static_cast<std::size_t>(tag)];
      --total;
      if (data.size() != 3 || data[1] != tag) {
        ++violations;
        continue;
      }
      const int source = static_cast<int>(data[0]);
      auto& expected = next[static_cast<std::size_t>(source)]
                           [static_cast<std::size_t>(tag)];
      if (static_cast<int>(data[2]) != expected) ++violations;
      ++expected;
    }
    // No lost messages: every (source, tag) stream ran to completion.
    for (int source = 0; source < kRanks; ++source) {
      if (source == self) continue;
      for (int tag = 0; tag < kTags; ++tag) {
        if (next[static_cast<std::size_t>(source)]
                [static_cast<std::size_t>(tag)] != kPerTag)
          ++violations;
      }
    }
  });

  EXPECT_EQ(violations.load(), 0);
  const std::int64_t expected_messages =
      static_cast<std::int64_t>(kRanks) * (kRanks - 1) * kTags * kPerTag;
  EXPECT_EQ(report.total_messages(), expected_messages);
  EXPECT_EQ(report.total_messages_received(), expected_messages);
  EXPECT_EQ(report.total_doubles_received(), report.total_doubles());
}

TEST(VmpiStress, RecvAnyDrainsEverythingInPerSourceOrder) {
  // recv_any pops the oldest queued message: within one source the arrival
  // order is the send order, whatever the tags.  The returned envelope must
  // match the payload's self-description.
  constexpr int kRanks = 6;
  constexpr int kCount = 60;
  std::atomic<std::int64_t> violations{0};
  run_ranks(kRanks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    for (int seq = 0; seq < kCount; ++seq) {
      for (int dest = 0; dest < kRanks; ++dest) {
        if (dest == self) continue;
        // Tag varies per message; per-source ordering must hold anyway.
        ctx.send(dest, /*tag=*/seq % 7,
                 {static_cast<double>(self), static_cast<double>(seq)});
      }
    }
    std::vector<int> next(kRanks, 0);
    for (int k = 0; k < (kRanks - 1) * kCount; ++k) {
      const auto [envelope, data] = ctx.recv_any();
      if (data.size() != 2 || static_cast<int>(data[0]) != envelope.source ||
          envelope.tag != static_cast<std::int64_t>(data[1]) % 7) {
        ++violations;
        continue;
      }
      auto& expected = next[static_cast<std::size_t>(envelope.source)];
      if (static_cast<int>(data[1]) != expected) ++violations;
      ++expected;
    }
    for (int source = 0; source < kRanks; ++source) {
      if (source != self && next[static_cast<std::size_t>(source)] != kCount)
        ++violations;
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(VmpiStress, ProbeSeesTheOldestEnvelopeFirst) {
  run_ranks(2, [&](RankContext& ctx) {
    if (ctx.rank() == 0) {
      EXPECT_FALSE(ctx.probe().has_value());
      ctx.barrier();   // rank 1 sends after this barrier
      ctx.barrier();   // both messages are queued now
      const auto first = ctx.probe();
      ASSERT_TRUE(first.has_value());
      EXPECT_EQ(first->source, 1);
      EXPECT_EQ(first->tag, 11);
      const auto [envelope, data] = ctx.recv_any();
      EXPECT_EQ(envelope.source, first->source);
      EXPECT_EQ(envelope.tag, first->tag);
      EXPECT_EQ(data, Payload{1.0});
      EXPECT_EQ(ctx.recv_any().first.tag, 22);
      EXPECT_FALSE(ctx.probe().has_value());
    } else {
      ctx.barrier();
      ctx.send(0, 11, {1.0});
      ctx.send(0, 22, {2.0});
      ctx.barrier();
    }
  });
}

TEST(VmpiStress, LargePayloadsSurviveIntact) {
  constexpr int kDoubles = 1 << 16;  // 512 KiB per message
  run_ranks(2, [&](RankContext& ctx) {
    if (ctx.rank() == 0) {
      Payload big(kDoubles);
      for (std::size_t k = 0; k < big.size(); ++k)
        big[k] = static_cast<double>(k % 1024);
      ctx.send(1, 0, std::move(big));
    } else {
      const Payload got = ctx.recv(0, 0);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(kDoubles));
      for (std::size_t k = 0; k < got.size(); ++k) {
        ASSERT_DOUBLE_EQ(got[k], static_cast<double>(k % 1024));
      }
    }
  });
}

}  // namespace
}  // namespace anyblock::vmpi
