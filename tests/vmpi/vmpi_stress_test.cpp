// Randomized stress tests for the message-passing layer: many ranks, many
// tags, interleaved out-of-order receives — checksum-verified.
#include <gtest/gtest.h>

#include <atomic>

#include "util/rng.hpp"
#include "vmpi/vmpi.hpp"

namespace anyblock::vmpi {
namespace {

TEST(VmpiStress, AllToAllWithPerPairChecksums) {
  constexpr int kRanks = 8;
  constexpr int kMessagesPerPair = 25;
  std::atomic<std::int64_t> mismatches{0};

  const RunReport report = run_ranks(kRanks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    // Send kMessagesPerPair payloads to every other rank, tagged by
    // sequence; the payload encodes (source, destination, sequence).
    for (int dest = 0; dest < kRanks; ++dest) {
      if (dest == self) continue;
      for (int seq = 0; seq < kMessagesPerPair; ++seq) {
        ctx.send(dest, seq,
                 {static_cast<double>(self), static_cast<double>(dest),
                  static_cast<double>(seq)});
      }
    }
    // Receive in a scrambled order: sequences descending, sources rotated.
    Rng rng(static_cast<std::uint64_t>(self) + 99);
    for (int seq = kMessagesPerPair - 1; seq >= 0; --seq) {
      for (int offset = 1; offset < kRanks; ++offset) {
        const int source = (self + offset) % kRanks;
        const Payload data = ctx.recv(source, seq);
        if (data.size() != 3 || data[0] != source || data[1] != self ||
            data[2] != seq) {
          ++mismatches;
        }
      }
    }
  });

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(report.total_messages(),
            static_cast<std::int64_t>(kRanks) * (kRanks - 1) *
                kMessagesPerPair);
}

TEST(VmpiStress, RingPipelineManyRounds) {
  constexpr int kRanks = 6;
  constexpr int kRounds = 200;
  run_ranks(kRanks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    const int next = (self + 1) % kRanks;
    const int prev = (self + kRanks - 1) % kRanks;
    double token = self;
    for (int round = 0; round < kRounds; ++round) {
      ctx.send(next, round, {token});
      token = ctx.recv(prev, round)[0] + 1.0;
    }
    // Each round the token advances one hop and gains +1; after kRounds
    // rounds, rank r holds the value started by rank (r - kRounds) mod P
    // plus kRounds.
    const double expected =
        static_cast<double>((self - kRounds % kRanks + kRanks) % kRanks) +
        kRounds;
    EXPECT_DOUBLE_EQ(token, expected);
  });
}

TEST(VmpiStress, BarrierStorm) {
  constexpr int kRanks = 8;
  std::atomic<std::int64_t> counter{0};
  std::atomic<bool> violated{false};
  run_ranks(kRanks, [&](RankContext& ctx) {
    for (int round = 0; round < 100; ++round) {
      ++counter;
      ctx.barrier();
      // Between two barriers every rank must observe the same multiple.
      if (counter.load() != static_cast<std::int64_t>(kRanks) * (round + 1))
        violated = true;
      ctx.barrier();
    }
  });
  EXPECT_FALSE(violated.load());
}

TEST(VmpiStress, LargePayloadsSurviveIntact) {
  constexpr int kDoubles = 1 << 16;  // 512 KiB per message
  run_ranks(2, [&](RankContext& ctx) {
    if (ctx.rank() == 0) {
      Payload big(kDoubles);
      for (std::size_t k = 0; k < big.size(); ++k)
        big[k] = static_cast<double>(k % 1024);
      ctx.send(1, 0, std::move(big));
    } else {
      const Payload got = ctx.recv(0, 0);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(kDoubles));
      for (std::size_t k = 0; k < got.size(); ++k) {
        ASSERT_DOUBLE_EQ(got[k], static_cast<double>(k % 1024));
      }
    }
  });
}

}  // namespace
}  // namespace anyblock::vmpi
