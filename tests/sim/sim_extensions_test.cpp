// Tests for the simulator extensions: the SYRK workload, heterogeneous
// node speeds, and the FIFO-vs-priority scheduling ablation.
#include <gtest/gtest.h>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/sbc.hpp"
#include "sim/engine.hpp"

namespace anyblock::sim {
namespace {

MachineConfig machine_for(std::int64_t nodes, int workers = 4) {
  MachineConfig machine;
  machine.nodes = nodes;
  machine.workers_per_node = workers;
  return machine;
}

TEST(SyrkWorkload, TaskAndMessageCounts) {
  const core::Pattern pattern = core::make_sbc(6);  // 4x4
  const std::int64_t t = 12;
  const std::int64_t k = 5;
  const core::PatternDistribution dist_c(pattern, t, true);
  const core::PatternDistribution dist_a(pattern, t, false);
  const Workload work =
      build_syrk_workload(t, k, dist_c, dist_a, machine_for(6));
  // t*k loads + k * (t SYRK + t(t-1)/2 GEMM).
  EXPECT_EQ(work.task_count(), t * k + k * (t + t * (t - 1) / 2));
  EXPECT_EQ(work.message_count(), core::exact_syrk_volume(pattern, t, k));
}

TEST(SyrkWorkload, LoadTasksAreFree) {
  const core::Pattern pattern = core::make_2dbc(2, 2);
  const core::PatternDistribution dist_c(pattern, 6, true);
  const core::PatternDistribution dist_a(pattern, 6, false);
  const MachineConfig machine = machine_for(4);
  const Workload work = build_syrk_workload(6, 3, dist_c, dist_a, machine);
  double expected_flops = 0.0;
  for (const auto& task : work.tasks) {
    if (task.type == TaskType::kLoad) continue;
    expected_flops += machine.task_flops(task.type);
  }
  EXPECT_DOUBLE_EQ(work.total_flops, expected_flops);
  EXPECT_DOUBLE_EQ(machine.task_seconds(TaskType::kLoad), 0.0);
}

TEST(SyrkWorkload, SimulationCompletesAndMessagesMatch) {
  const core::Pattern pattern = core::make_sbc(6);
  const std::int64_t t = 12;
  const std::int64_t k = 5;
  const core::PatternDistribution dist_c(pattern, t, true);
  const core::PatternDistribution dist_a(pattern, t, false);
  const MachineConfig machine = machine_for(6);
  const SimReport report = simulate_syrk(t, k, dist_c, dist_a, machine);
  EXPECT_GT(report.makespan_seconds, 0.0);
  EXPECT_EQ(report.messages, core::exact_syrk_volume(pattern, t, k));
  EXPECT_GT(report.total_gflops(), 0.0);
}

TEST(SyrkWorkload, SbcBeatsSquare2dbcPerNode) {
  // The original SBC claim was made for SYRK as much as for Cholesky.
  const std::int64_t t = 32;
  const std::int64_t k = 8;
  const core::Pattern sbc = core::make_sbc(21);
  const core::Pattern bc = core::make_2dbc(5, 5);
  const core::PatternDistribution sbc_c(sbc, t, true);
  const core::PatternDistribution sbc_a(sbc, t, false);
  const core::PatternDistribution bc_c(bc, t, true);
  const core::PatternDistribution bc_a(bc, t, false);
  const SimReport sbc_report =
      simulate_syrk(t, k, sbc_c, sbc_a, machine_for(21));
  const SimReport bc_report = simulate_syrk(t, k, bc_c, bc_a, machine_for(25));
  EXPECT_LT(sbc_report.messages, bc_report.messages);
}

TEST(Heterogeneity, FasterNodesShortenMakespan) {
  const core::PatternDistribution dist(core::make_2dbc(2, 2), 16, false);
  MachineConfig uniform = machine_for(4);
  MachineConfig boosted = machine_for(4);
  boosted.node_speed = {2.0, 2.0, 2.0, 2.0};
  const double base = simulate_lu(16, dist, uniform).makespan_seconds;
  const double fast = simulate_lu(16, dist, boosted).makespan_seconds;
  EXPECT_LT(fast, base);
  EXPECT_GT(fast, base / 2.5);  // comm does not speed up
}

TEST(Heterogeneity, OneSlowNodeDragsTheRun) {
  const core::PatternDistribution dist(core::make_2dbc(2, 2), 16, false);
  MachineConfig skewed = machine_for(4);
  skewed.node_speed = {1.0, 1.0, 1.0, 0.25};
  const double base =
      simulate_lu(16, dist, machine_for(4)).makespan_seconds;
  const double slow = simulate_lu(16, dist, skewed).makespan_seconds;
  // A balanced distribution cannot hide a 4x slower node.
  EXPECT_GT(slow, base * 1.5);
}

TEST(Heterogeneity, RejectsBadSpeedVectors) {
  const core::PatternDistribution dist(core::make_2dbc(2, 2), 8, false);
  MachineConfig wrong_size = machine_for(4);
  wrong_size.node_speed = {1.0, 1.0};
  EXPECT_THROW(simulate_lu(8, dist, wrong_size), std::invalid_argument);
  MachineConfig zero_speed = machine_for(4);
  zero_speed.node_speed = {1.0, 1.0, 1.0, 0.0};
  EXPECT_THROW(simulate_lu(8, dist, zero_speed), std::invalid_argument);
}

TEST(SchedulerAblation, PriorityNeverMuchWorseAndOftenBetter) {
  // Critical-path priorities should beat (or tie) FIFO on the LU panel
  // chain; the ablation knob must at least change the schedule.
  const core::PatternDistribution dist(core::make_2dbc(2, 3), 36, false);
  MachineConfig prio = machine_for(6, 2);
  MachineConfig fifo = machine_for(6, 2);
  fifo.priority_scheduling = false;
  const double with_prio = simulate_lu(36, dist, prio).makespan_seconds;
  const double with_fifo = simulate_lu(36, dist, fifo).makespan_seconds;
  EXPECT_LE(with_prio, with_fifo * 1.02);
}

TEST(SchedulerAblation, FifoIsDeterministicToo) {
  const core::PatternDistribution dist(core::make_2dbc(2, 3), 24, false);
  MachineConfig fifo = machine_for(6, 2);
  fifo.priority_scheduling = false;
  const double a = simulate_lu(24, dist, fifo).makespan_seconds;
  const double b = simulate_lu(24, dist, fifo).makespan_seconds;
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace anyblock::sim
