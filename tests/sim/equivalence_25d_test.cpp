// Golden equivalence + property wall for the 2.5D replicated schedule.
//
// The contract under test (core/replicated.hpp, sim/workload_25d.hpp):
//  * c = 1 is *bit-identical* to the plain 2D path — same trajectory, same
//    per-node counters, same obs metric rows — for every distribution
//    family, collective, workload mode, and fault plan.
//  * For any (P_b, c, t) the implicit generator's closed forms reproduce
//    the materialized 2.5D builder task-for-task, instance-for-instance.
//  * Measured communication equals the closed forms exactly
//    (core/cost.hpp) and never undercuts the parallel-I/O lower bound
//    (core/bounds.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "comm/config.hpp"
#include "comm/multicast.hpp"
#include "core/block_cyclic.hpp"
#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/pattern_search.hpp"
#include "core/replicated.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"
#include "sim/workload_25d.hpp"

namespace anyblock::sim {
namespace {

struct DistCase {
  const char* name;
  core::Pattern pattern;
  std::int64_t base_nodes;
};

std::vector<DistCase> dist_cases() {
  core::GcrmSearchOptions options;
  options.seeds = 5;
  const core::GcrmSearchResult gcrm = core::gcrm_search(31, options);
  EXPECT_TRUE(gcrm.found);
  return {{"g2dbc_p23", core::make_g2dbc(23), 23},
          {"gcrm_p31", gcrm.best, 31},
          {"2dbc_4x3", core::make_2dbc(4, 3), 12}};
}

core::ReplicatedDistribution replicate(const DistCase& dist, std::int64_t t,
                                       bool symmetric, std::int64_t layers) {
  return core::ReplicatedDistribution(
      std::make_shared<core::PatternDistribution>(dist.pattern, t, symmetric),
      layers);
}

MachineConfig machine_for(std::int64_t nodes, comm::Algorithm algorithm,
                          WorkloadMode mode) {
  MachineConfig machine;
  machine.nodes = nodes;
  machine.workers_per_node = 4;
  machine.collective.algorithm = algorithm;
  machine.collective.chain_chunks = 3;
  machine.workload_mode = mode;
  return machine;
}

constexpr std::int64_t kT = 20;

void expect_identical_reports(const SimReport& a, const SimReport& b) {
  EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events, b.events);
  EXPECT_NEAR(a.total_flops, b.total_flops, 1e-9 * a.total_flops);
  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (std::size_t n = 0; n < a.per_node.size(); ++n) {
    EXPECT_EQ(a.per_node[n].busy_seconds, b.per_node[n].busy_seconds) << n;
    EXPECT_EQ(a.per_node[n].tasks, b.per_node[n].tasks) << n;
    EXPECT_EQ(a.per_node[n].messages_sent, b.per_node[n].messages_sent) << n;
    EXPECT_EQ(a.per_node[n].bytes_sent, b.per_node[n].bytes_sent) << n;
  }
  EXPECT_EQ(a.faults.drops, b.faults.drops);
  EXPECT_EQ(a.faults.duplicates, b.faults.duplicates);
  EXPECT_EQ(a.faults.delays, b.faults.delays);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.timeout_waits, b.faults.timeout_waits);
  EXPECT_EQ(a.faults.dedup_discards, b.faults.dedup_discards);
}

// ---------------------------------------------------------------------------
// Golden: one layer *is* the 2D schedule, bit for bit.

TEST(Golden25d, OneLayerMatches2dAcrossCollectivesAndModes) {
  for (const DistCase& dist : dist_cases()) {
    for (const bool symmetric : {false, true}) {
      for (const comm::Algorithm algorithm :
           {comm::Algorithm::kEagerP2P, comm::Algorithm::kBinomialTree,
            comm::Algorithm::kPipelinedChain}) {
        for (const WorkloadMode mode :
             {WorkloadMode::kMaterialized, WorkloadMode::kImplicit}) {
          SCOPED_TRACE(std::string(dist.name) +
                       (symmetric ? " cholesky " : " lu ") +
                       comm::algorithm_name(algorithm) + " mode " +
                       std::to_string(mode == WorkloadMode::kImplicit));
          const MachineConfig machine =
              machine_for(dist.base_nodes, algorithm, mode);
          const core::PatternDistribution base(dist.pattern, kT, symmetric);
          const core::ReplicatedDistribution stacked =
              replicate(dist, kT, symmetric, 1);
          const SimReport flat = symmetric
                                     ? simulate_cholesky(kT, base, machine)
                                     : simulate_lu(kT, base, machine);
          const SimReport layered =
              symmetric ? simulate_cholesky_25d(kT, stacked, machine)
                        : simulate_lu_25d(kT, stacked, machine);
          expect_identical_reports(flat, layered);
        }
      }
    }
  }
}

TEST(Golden25d, OneLayerObsMetricRowsAreIdentical) {
  const DistCase dist{"g2dbc_p23", core::make_g2dbc(23), 23};
  for (const bool symmetric : {false, true}) {
    for (const WorkloadMode mode :
         {WorkloadMode::kMaterialized, WorkloadMode::kImplicit}) {
      std::string csv[2];
      for (const bool layered : {false, true}) {
        obs::Recorder recorder;
        MachineConfig machine =
            machine_for(dist.base_nodes, comm::Algorithm::kEagerP2P, mode);
        machine.recorder = &recorder;
        if (layered) {
          const core::ReplicatedDistribution stacked =
              replicate(dist, kT, symmetric, 1);
          if (symmetric)
            simulate_cholesky_25d(kT, stacked, machine);
          else
            simulate_lu_25d(kT, stacked, machine);
        } else {
          const core::PatternDistribution base(dist.pattern, kT, symmetric);
          if (symmetric)
            simulate_cholesky(kT, base, machine);
          else
            simulate_lu(kT, base, machine);
        }
        std::ostringstream out;
        obs::write_metrics_csv(out, recorder.take(), {});
        csv[layered] = out.str();
      }
      EXPECT_EQ(csv[0], csv[1]) << symmetric;
      EXPECT_FALSE(csv[0].empty());
    }
  }
}

TEST(Golden25d, OneLayerMaterializedWorkloadIsTheSameGraph) {
  // Stronger than trajectory equality: the c = 1 builder emits the exact
  // same task/instance tables as the 2D builder, field for field.
  MachineConfig machine;
  for (const DistCase& dist : dist_cases()) {
    machine.nodes = dist.base_nodes;
    for (const bool symmetric : {false, true}) {
      SCOPED_TRACE(std::string(dist.name) + (symmetric ? " chol" : " lu"));
      const core::PatternDistribution base(dist.pattern, kT, symmetric);
      const core::ReplicatedDistribution stacked =
          replicate(dist, kT, symmetric, 1);
      const Workload flat = symmetric
                                ? build_cholesky_workload(kT, base, machine)
                                : build_lu_workload(kT, base, machine);
      const Workload layered =
          symmetric ? build_cholesky_workload_25d(kT, stacked, machine)
                    : build_lu_workload_25d(kT, stacked, machine);
      ASSERT_EQ(flat.tasks.size(), layered.tasks.size());
      ASSERT_EQ(flat.instances.size(), layered.instances.size());
      EXPECT_EQ(flat.total_flops, layered.total_flops);
      for (std::size_t id = 0; id < flat.tasks.size(); ++id) {
        const SimTask& a = flat.tasks[id];
        const SimTask& b = layered.tasks[id];
        ASSERT_EQ(a.type, b.type) << id;
        ASSERT_EQ(a.node, b.node) << id;
        ASSERT_EQ(a.deps, b.deps) << id;
        ASSERT_EQ(a.successor, b.successor) << id;
        ASSERT_EQ(a.publishes, b.publishes) << id;
      }
      for (std::size_t inst = 0; inst < flat.instances.size(); ++inst) {
        const Instance& a = flat.instances[inst];
        const Instance& b = layered.instances[inst];
        ASSERT_EQ(a.producer_node, b.producer_node) << inst;
        ASSERT_EQ(a.groups.size(), b.groups.size()) << inst;
        for (std::size_t g = 0; g < a.groups.size(); ++g) {
          ASSERT_EQ(a.groups[g].node, b.groups[g].node) << inst;
          ASSERT_EQ(a.groups[g].waiters, b.groups[g].waiters) << inst;
        }
      }
    }
  }
}

TEST(Golden25d, FaultTrajectoriesMatchAcrossModesAtTwoLayers) {
  // Fault fates key off instance ordinals; the generator and the builder
  // agree on those at any layer count, so chaos runs stay bit-identical
  // across workload modes even with flush/reduce traffic in flight.
  for (const comm::Algorithm algorithm :
       {comm::Algorithm::kEagerP2P, comm::Algorithm::kPipelinedChain}) {
    SimReport reports[2];
    for (const WorkloadMode mode :
         {WorkloadMode::kMaterialized, WorkloadMode::kImplicit}) {
      MachineConfig machine = machine_for(2 * 23, algorithm, mode);
      machine.faults.drop = 0.05;
      machine.faults.duplicate = 0.03;
      machine.faults.delay = 0.05;
      machine.faults.link_jitter = 0.2;
      machine.faults.seed = 7;
      const DistCase dist{"g2dbc_p23", core::make_g2dbc(23), 23};
      const core::ReplicatedDistribution stacked =
          replicate(dist, kT, false, 2);
      reports[mode == WorkloadMode::kImplicit] =
          simulate_lu_25d(kT, stacked, machine);
    }
    expect_identical_reports(reports[0], reports[1]);
    EXPECT_GT(reports[0].faults.drops, 0);
  }
}

// ---------------------------------------------------------------------------
// Structure: generator closed forms == materialized builder at any c.

void expect_same_structure(const Workload& work, Implicit25dWorkload& model) {
  ASSERT_EQ(work.task_count(), model.task_count());
  ASSERT_EQ(static_cast<std::int64_t>(work.instances.size()),
            model.instance_count());
  EXPECT_NEAR(work.total_flops, model.total_flops(),
              1e-9 * (work.total_flops + 1.0));
  for (std::int64_t id = 0; id < work.task_count(); ++id) {
    const SimTask& task = work.tasks[static_cast<std::size_t>(id)];
    const TaskView view = model.task(id);
    ASSERT_EQ(task.type, view.type) << id;
    EXPECT_EQ(task.l, view.l) << id;
    EXPECT_EQ(task.i, view.i) << id;
    EXPECT_EQ(task.j, view.j) << id;
    EXPECT_EQ(task.node, view.node) << id;
    EXPECT_EQ(task.successor, view.successor) << id;
    EXPECT_EQ(task.publishes, view.publishes) << id;
    EXPECT_EQ(task.deps, model.initial_deps(id)) << id;
    if (task.publishes < 0) continue;
    const Instance& instance =
        work.instances[static_cast<std::size_t>(task.publishes)];
    const auto handle = model.publish(task.publishes, view);
    ASSERT_EQ(static_cast<std::int64_t>(instance.groups.size()),
              Implicit25dWorkload::group_count(handle))
        << id;
    EXPECT_EQ(instance.producer_node,
              Implicit25dWorkload::producer_node(handle));
    for (std::size_t g = 0; g < instance.groups.size(); ++g) {
      EXPECT_EQ(instance.groups[g].node,
                Implicit25dWorkload::group_node(handle,
                                                static_cast<std::int64_t>(g)))
          << id;
      std::vector<std::int64_t> waiters;
      Implicit25dWorkload::for_each_waiter(
          handle, static_cast<std::int64_t>(g),
          [&](std::int64_t waiter) { waiters.push_back(waiter); });
      EXPECT_EQ(instance.groups[g].waiters, waiters) << id;
    }
    model.release(task.publishes);
  }
}

TEST(ImplicitStructure25d, MatchesMaterializedBuilderAtEveryLayerCount) {
  MachineConfig machine;
  const std::int64_t t = 13;
  for (const DistCase& dist : dist_cases()) {
    for (const std::int64_t layers : {1, 2, 3, 4}) {
      machine.nodes = dist.base_nodes * layers;
      {
        const core::ReplicatedDistribution d =
            replicate(dist, t, false, layers);
        const Workload work = build_lu_workload_25d(t, d, machine);
        Implicit25dWorkload model(SimKernel::kLu, t, d, machine);
        SCOPED_TRACE(std::string("lu ") + dist.name + " c=" +
                     std::to_string(layers));
        expect_same_structure(work, model);
      }
      {
        const core::ReplicatedDistribution d =
            replicate(dist, t, true, layers);
        const Workload work = build_cholesky_workload_25d(t, d, machine);
        Implicit25dWorkload model(SimKernel::kCholesky, t, d, machine);
        SCOPED_TRACE(std::string("cholesky ") + dist.name + " c=" +
                     std::to_string(layers));
        expect_same_structure(work, model);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Property wall: measured communication == closed forms >= lower bound,
// on randomized (P_b, c, t).

TEST(Property25d, MeasuredTrafficMatchesClosedFormsAndBound) {
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<std::int64_t> pick_nodes(4, 16);
  std::uniform_int_distribution<std::int64_t> pick_layers(1, 4);
  std::uniform_int_distribution<std::int64_t> pick_t(6, 16);
  for (int trial = 0; trial < 12; ++trial) {
    const std::int64_t base_nodes = pick_nodes(rng);
    const std::int64_t layers = pick_layers(rng);
    const std::int64_t t = pick_t(rng);
    const DistCase dist{"g2dbc", core::make_g2dbc(base_nodes), base_nodes};
    SCOPED_TRACE("P_b=" + std::to_string(base_nodes) + " c=" +
                 std::to_string(layers) + " t=" + std::to_string(t));
    for (const bool symmetric : {false, true}) {
      const core::ReplicatedDistribution d =
          replicate(dist, t, symmetric, layers);
      const std::int64_t volume =
          symmetric ? core::exact_cholesky_volume_25d(d, t)
                    : core::exact_lu_volume_25d(d, t);
      // Tile traffic never undercuts the memory-dependent I/O bound.
      const double bound =
          symmetric
              ? core::cholesky_io_lower_bound_tiles(t, d.num_nodes(), layers)
              : core::lu_io_lower_bound_tiles(t, d.num_nodes(), layers);
      EXPECT_GE(static_cast<double>(volume), bound);
      for (const comm::Algorithm algorithm :
           {comm::Algorithm::kEagerP2P, comm::Algorithm::kBinomialTree,
            comm::Algorithm::kPipelinedChain}) {
        const MachineConfig machine =
            machine_for(d.num_nodes(), algorithm, WorkloadMode::kImplicit);
        const SimReport report = symmetric
                                     ? simulate_cholesky_25d(t, d, machine)
                                     : simulate_lu_25d(t, d, machine);
        const std::int64_t predicted =
            symmetric
                ? core::exact_cholesky_messages_25d(d, t, machine.collective)
                : core::exact_lu_messages_25d(d, t, machine.collective);
        EXPECT_EQ(report.messages, predicted)
            << comm::algorithm_name(algorithm);
        if (algorithm == comm::Algorithm::kEagerP2P) {
          // Eager point-to-point: one message per tile transfer, so the
          // trajectory's total equals the volume closed form and the
          // per-rank split equals the send profile.
          EXPECT_EQ(report.messages, volume);
          const std::vector<std::int64_t> profile =
              symmetric ? core::cholesky_send_profile_25d(d, t)
                        : core::lu_send_profile_25d(d, t);
          ASSERT_EQ(report.per_node.size(), profile.size());
          for (std::size_t n = 0; n < profile.size(); ++n)
            EXPECT_EQ(report.per_node[n].messages_sent, profile[n]) << n;
        }
      }
    }
  }
}

TEST(Property25d, MaterializedMessageCountMatchesClosedForm) {
  // The builder's static message_count() (remote consumer groups) agrees
  // with the eager-p2p closed form too — no double counting of flushes.
  MachineConfig machine;
  for (const DistCase& dist : dist_cases()) {
    for (const std::int64_t layers : {1, 2, 3}) {
      machine.nodes = dist.base_nodes * layers;
      const core::ReplicatedDistribution lu = replicate(dist, kT, false, layers);
      const core::ReplicatedDistribution chol =
          replicate(dist, kT, true, layers);
      EXPECT_EQ(build_lu_workload_25d(kT, lu, machine).message_count(),
                core::exact_lu_volume_25d(lu, kT))
          << dist.name << " c=" << layers;
      EXPECT_EQ(build_cholesky_workload_25d(kT, chol, machine).message_count(),
                core::exact_cholesky_volume_25d(chol, kT))
          << dist.name << " c=" << layers;
    }
  }
}

TEST(Property25d, ReplicationReducesBroadcastVolume) {
  // The headline claim at fixed P: stacking layers shrinks panel-broadcast
  // volume (smaller base grid) at the price of reduce traffic; the total
  // must come out ahead for large enough t.
  const std::int64_t t = 64;
  const std::int64_t total_nodes = 256;
  const core::ReplicatedDistribution flat(
      std::make_shared<core::PatternDistribution>(core::make_g2dbc(256), t,
                                                  false),
      1);
  const core::ReplicatedDistribution stacked(
      std::make_shared<core::PatternDistribution>(core::make_g2dbc(64), t,
                                                  false),
      4);
  ASSERT_EQ(flat.num_nodes(), total_nodes);
  ASSERT_EQ(stacked.num_nodes(), total_nodes);
  EXPECT_LT(core::exact_lu_volume_25d(stacked, t),
            core::exact_lu_volume_25d(flat, t));
}

}  // namespace
}  // namespace anyblock::sim
