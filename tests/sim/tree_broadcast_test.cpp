// Tests for the binomial-broadcast ablation mode: same message multiset
// semantics (every remote consumer receives the tile exactly once), never
// slower than serial point-to-point by more than scheduling noise, and
// clearly faster where one sender feeds many receivers.
#include <gtest/gtest.h>

#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "sim/engine.hpp"

namespace anyblock::sim {
namespace {

MachineConfig machine_for(std::int64_t nodes, bool tree) {
  MachineConfig machine;
  machine.nodes = nodes;
  machine.workers_per_node = 4;
  machine.tree_broadcast = tree;
  return machine;
}

TEST(TreeBroadcast, SameMessageCountAsP2p) {
  // The tree changes *who* sends, not how many point-to-point transfers
  // happen: still one per (tile, destination) pair.
  const core::PatternDistribution dist(core::make_2dbc(2, 3), 18, false);
  const SimReport p2p = simulate_lu(18, dist, machine_for(6, false));
  const SimReport tree = simulate_lu(18, dist, machine_for(6, true));
  EXPECT_EQ(p2p.messages, tree.messages);
  EXPECT_EQ(p2p.tasks, tree.tasks);
}

TEST(TreeBroadcast, CompletesOnEveryWorkload) {
  for (const auto& pattern :
       {core::make_2dbc(23, 1), core::make_g2dbc(23), core::make_2dbc(5, 4)}) {
    const std::int64_t t = 23;
    const core::PatternDistribution dist(pattern, t, false);
    const SimReport report =
        simulate_lu(t, dist, machine_for(pattern.num_nodes(), true));
    EXPECT_GT(report.makespan_seconds, 0.0);
    EXPECT_GT(report.total_gflops(), 0.0);
  }
}

TEST(TreeBroadcast, HelpsTheWideBroadcastPattern) {
  // 23x1: each iteration one node broadcasts its row tiles to 22 others.
  // Serializing 22 sends through one NIC is exactly what the tree fixes.
  const std::int64_t t = 46;
  const core::PatternDistribution dist(core::make_2dbc(23, 1), t, false);
  const double p2p =
      simulate_lu(t, dist, machine_for(23, false)).makespan_seconds;
  const double tree =
      simulate_lu(t, dist, machine_for(23, true)).makespan_seconds;
  EXPECT_LT(tree, p2p);
}

TEST(TreeBroadcast, DeterministicToo) {
  const core::PatternDistribution dist(core::make_g2dbc(10), 20, false);
  const SimReport a = simulate_lu(20, dist, machine_for(10, true));
  const SimReport b = simulate_lu(20, dist, machine_for(10, true));
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
}

TEST(TreeBroadcast, CholeskyWorksToo) {
  const core::PatternDistribution dist(core::make_2dbc(3, 3), 18, true);
  const SimReport p2p = simulate_cholesky(18, dist, machine_for(9, false));
  const SimReport tree = simulate_cholesky(18, dist, machine_for(9, true));
  EXPECT_EQ(p2p.messages, tree.messages);
  EXPECT_GT(tree.total_gflops(), 0.0);
}

}  // namespace
}  // namespace anyblock::sim
