#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "core/sbc.hpp"
#include "core/cost.hpp"
#include "core/distribution.hpp"
#include "linalg/kernels.hpp"

namespace anyblock::sim {
namespace {

MachineConfig machine_for(std::int64_t nodes) {
  MachineConfig machine;
  machine.nodes = nodes;
  return machine;
}

TEST(Workload, LuTaskCount) {
  // t iterations: 1 GETRF + 2(t-1-l) TRSM + (t-1-l)^2 GEMM.
  const core::PatternDistribution dist(core::make_2dbc(2, 2), 8, false);
  const Workload work = build_lu_workload(8, dist, machine_for(4));
  std::int64_t expected = 0;
  for (std::int64_t l = 0; l < 8; ++l) {
    const std::int64_t k = 8 - 1 - l;
    expected += 1 + 2 * k + k * k;
  }
  EXPECT_EQ(work.task_count(), expected);
}

TEST(Workload, CholeskyTaskCount) {
  // t iterations: 1 POTRF + (t-1-l) TRSM + (t-1-l) SYRK + C(t-1-l,2) GEMM.
  const core::PatternDistribution dist(core::make_2dbc(2, 2), 7, true);
  const Workload work = build_cholesky_workload(7, dist, machine_for(4));
  std::int64_t expected = 0;
  for (std::int64_t l = 0; l < 7; ++l) {
    const std::int64_t k = 7 - 1 - l;
    expected += 1 + 2 * k + k * (k - 1) / 2;
  }
  EXPECT_EQ(work.task_count(), expected);
}

TEST(Workload, TotalFlopsMatchKernelSums) {
  const MachineConfig machine = machine_for(4);
  const core::PatternDistribution dist(core::make_2dbc(2, 2), 6, false);
  const Workload work = build_lu_workload(6, dist, machine);
  double expected = 0.0;
  for (const auto& task : work.tasks) expected += machine.task_flops(task.type);
  EXPECT_DOUBLE_EQ(work.total_flops, expected);
  // And roughly 2/3 n^3 for the whole factorization.
  const double n = 6.0 * static_cast<double>(machine.tile_size);
  EXPECT_NEAR(work.total_flops / (2.0 / 3.0 * n * n * n), 1.0, 0.15);
}

TEST(Workload, MessageCountEqualsExactVolumeLu) {
  // The eager per-destination-dedup protocol is exactly what
  // exact_lu_volume counts.
  for (const auto& pattern :
       {core::make_2dbc(2, 3), core::make_2dbc(5, 1), core::make_g2dbc(7)}) {
    const std::int64_t t = 12;
    const core::PatternDistribution dist(pattern, t, false);
    const Workload work =
        build_lu_workload(t, dist, machine_for(pattern.num_nodes()));
    EXPECT_EQ(work.message_count(), core::exact_lu_volume(pattern, t));
  }
}

TEST(Workload, MessageCountEqualsExactVolumeCholesky) {
  for (const auto& pattern :
       {core::make_2dbc(2, 2), core::make_2dbc(3, 3), core::make_sbc(6)}) {
    const std::int64_t t = 12;
    const core::PatternDistribution dist(pattern, t, true);
    const Workload work =
        build_cholesky_workload(t, dist, machine_for(pattern.num_nodes()));
    EXPECT_EQ(work.message_count(), core::exact_cholesky_volume(pattern, t));
  }
}

TEST(Workload, TasksRunOnOwners) {
  const core::Pattern pattern = core::make_2dbc(2, 3);
  const std::int64_t t = 9;
  const core::PatternDistribution dist(pattern, t, false);
  const Workload work = build_lu_workload(t, dist, machine_for(6));
  for (const auto& task : work.tasks)
    EXPECT_EQ(task.node, dist.owner(task.i, task.j));
}

TEST(Workload, ChainSuccessorsAreOnSameTileAndNode) {
  const core::PatternDistribution dist(core::make_2dbc(2, 2), 8, false);
  const Workload work = build_lu_workload(8, dist, machine_for(4));
  for (const auto& task : work.tasks) {
    if (task.successor < 0) continue;
    const SimTask& next =
        work.tasks[static_cast<std::size_t>(task.successor)];
    EXPECT_EQ(task.i, next.i);
    EXPECT_EQ(task.j, next.j);
    EXPECT_EQ(task.node, next.node);
    EXPECT_EQ(next.l, task.l + 1);  // writers advance one iteration
  }
}

TEST(Workload, DepsAreConsistent) {
  // Every task's dependency count equals (has chain predecessor) + number
  // of instances listing it as a waiter.
  const core::PatternDistribution dist(core::make_2dbc(2, 3), 10, false);
  const Workload work = build_lu_workload(10, dist, machine_for(6));
  std::vector<std::int32_t> expected(work.tasks.size(), 0);
  for (const auto& task : work.tasks) {
    if (task.successor >= 0)
      ++expected[static_cast<std::size_t>(task.successor)];
  }
  for (const auto& instance : work.instances)
    for (const auto& group : instance.groups)
      for (const auto waiter : group.waiters)
        ++expected[static_cast<std::size_t>(waiter)];
  for (std::size_t id = 0; id < work.tasks.size(); ++id)
    EXPECT_EQ(work.tasks[id].deps, expected[id]) << "task " << id;
}

TEST(Workload, SingleNodeHasNoMessages) {
  const core::PatternDistribution dist(core::make_2dbc(1, 1), 10, false);
  EXPECT_EQ(build_lu_workload(10, dist, machine_for(1)).message_count(), 0);
  const core::PatternDistribution sdist(core::make_2dbc(1, 1), 10, true);
  EXPECT_EQ(build_cholesky_workload(10, sdist, machine_for(1)).message_count(),
            0);
}

TEST(Workload, RejectsBadGrid) {
  const core::PatternDistribution dist(core::make_2dbc(1, 1), 4, false);
  EXPECT_THROW(build_lu_workload(0, dist, machine_for(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::sim
