// Golden equivalence suite for the two DAG representations and the two
// event queues: implicit (generator-driven) and materialized workloads
// must produce bit-identical simulations — same makespan, same per-node
// task/message counters, same obs metric rows — for every factorization,
// distribution family, and collective.  Also holds the 64-bit task-id
// regression tests at the old int32 overflow boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "comm/config.hpp"
#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "core/pattern_search.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/implicit_workload.hpp"
#include "sim/workload.hpp"

namespace anyblock::sim {
namespace {

enum class Kernel { kLu, kCholesky, kSyrk };

struct DistCase {
  const char* name;
  core::Pattern pattern;
  std::int64_t nodes;
};

std::vector<DistCase> dist_cases() {
  core::GcrmSearchOptions options;
  options.seeds = 5;
  const core::GcrmSearchResult gcrm = core::gcrm_search(31, options);
  EXPECT_TRUE(gcrm.found);
  return {{"g2dbc_p23", core::make_g2dbc(23), 23},
          {"gcrm_p31", gcrm.best, 31},
          {"2dbc_4x3", core::make_2dbc(4, 3), 12}};
}

MachineConfig machine_for(std::int64_t nodes, comm::Algorithm algorithm,
                          WorkloadMode mode,
                          EventQueueMode queue = EventQueueMode::kCalendar) {
  MachineConfig machine;
  machine.nodes = nodes;
  machine.workers_per_node = 4;
  machine.collective.algorithm = algorithm;
  machine.collective.chain_chunks = 3;
  machine.workload_mode = mode;
  machine.event_queue = queue;
  return machine;
}

constexpr std::int64_t kT = 20;  ///< tile grid side used by trajectory tests
constexpr std::int64_t kSyrkK = 7;

SimReport run_kernel(Kernel kernel, const DistCase& dist,
                     const MachineConfig& machine) {
  switch (kernel) {
    case Kernel::kLu: {
      const core::PatternDistribution d(dist.pattern, kT, false);
      return simulate_lu(kT, d, machine);
    }
    case Kernel::kCholesky: {
      const core::PatternDistribution d(dist.pattern, kT, true);
      return simulate_cholesky(kT, d, machine);
    }
    case Kernel::kSyrk: {
      const core::PatternDistribution c(dist.pattern, kT, true);
      const core::PatternDistribution a(dist.pattern, kT, false);
      return simulate_syrk(kT, kSyrkK, c, a, machine);
    }
  }
  throw std::logic_error("unreachable");
}

/// Bit-exact comparison of everything the simulation is supposed to keep
/// identical across representations.  total_flops is summed in a different
/// order by the implicit generator, so it gets a relative tolerance.
void expect_identical_reports(const SimReport& a, const SimReport& b) {
  EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events, b.events);
  EXPECT_NEAR(a.total_flops, b.total_flops, 1e-9 * a.total_flops);
  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (std::size_t n = 0; n < a.per_node.size(); ++n) {
    EXPECT_EQ(a.per_node[n].busy_seconds, b.per_node[n].busy_seconds) << n;
    EXPECT_EQ(a.per_node[n].tasks, b.per_node[n].tasks) << n;
    EXPECT_EQ(a.per_node[n].messages_sent, b.per_node[n].messages_sent) << n;
    EXPECT_EQ(a.per_node[n].bytes_sent, b.per_node[n].bytes_sent) << n;
  }
  EXPECT_EQ(a.faults.drops, b.faults.drops);
  EXPECT_EQ(a.faults.duplicates, b.faults.duplicates);
  EXPECT_EQ(a.faults.delays, b.faults.delays);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.timeout_waits, b.faults.timeout_waits);
  EXPECT_EQ(a.faults.dedup_discards, b.faults.dedup_discards);
}

TEST(ModeEquivalence, TrajectoriesMatchAcrossKernelsDistributionsCollectives) {
  for (const DistCase& dist : dist_cases()) {
    for (const Kernel kernel :
         {Kernel::kLu, Kernel::kCholesky, Kernel::kSyrk}) {
      for (const comm::Algorithm algorithm :
           {comm::Algorithm::kEagerP2P, comm::Algorithm::kBinomialTree,
            comm::Algorithm::kPipelinedChain}) {
        const SimReport materialized = run_kernel(
            kernel, dist,
            machine_for(dist.nodes, algorithm, WorkloadMode::kMaterialized));
        const SimReport implicit = run_kernel(
            kernel, dist,
            machine_for(dist.nodes, algorithm, WorkloadMode::kImplicit));
        SCOPED_TRACE(std::string(dist.name) + " kernel " +
                     std::to_string(static_cast<int>(kernel)) + " alg " +
                     comm::algorithm_name(algorithm));
        expect_identical_reports(materialized, implicit);
        // The implicit frontier must actually be a frontier, not the DAG.
        EXPECT_LT(implicit.frontier_peak, materialized.frontier_peak);
      }
    }
  }
}

TEST(ModeEquivalence, ObsMetricRowsAreIdentical) {
  // Same trace-derived metrics CSV byte for byte: the sim_* events carry
  // the same names, times, tags and flows in both modes.
  const DistCase dist{"g2dbc_p23", core::make_g2dbc(23), 23};
  for (const Kernel kernel :
       {Kernel::kLu, Kernel::kCholesky, Kernel::kSyrk}) {
    std::string csv[2];
    for (const WorkloadMode mode :
         {WorkloadMode::kMaterialized, WorkloadMode::kImplicit}) {
      obs::Recorder recorder;
      MachineConfig machine =
          machine_for(dist.nodes, comm::Algorithm::kEagerP2P, mode);
      machine.recorder = &recorder;
      run_kernel(kernel, dist, machine);
      std::ostringstream out;
      obs::write_metrics_csv(out, recorder.take(), {});
      csv[mode == WorkloadMode::kImplicit] = out.str();
    }
    EXPECT_EQ(csv[0], csv[1]) << static_cast<int>(kernel);
    EXPECT_FALSE(csv[0].empty());
  }
}

TEST(ModeEquivalence, FaultTrajectoriesMatchToo) {
  // Drops, retransmissions, duplicates and jitter draw from fate_of keyed
  // by instance ordinal — identical ordinals mean identical fault
  // schedules, so even chaos runs are bit-identical across modes.
  for (const comm::Algorithm algorithm :
       {comm::Algorithm::kEagerP2P, comm::Algorithm::kPipelinedChain}) {
    SimReport reports[2];
    for (const WorkloadMode mode :
         {WorkloadMode::kMaterialized, WorkloadMode::kImplicit}) {
      MachineConfig machine = machine_for(23, algorithm, mode);
      machine.faults.drop = 0.05;
      machine.faults.duplicate = 0.03;
      machine.faults.delay = 0.05;
      machine.faults.link_jitter = 0.2;
      machine.faults.seed = 7;
      const DistCase dist{"g2dbc_p23", core::make_g2dbc(23), 23};
      reports[mode == WorkloadMode::kImplicit] =
          run_kernel(Kernel::kLu, dist, machine);
    }
    expect_identical_reports(reports[0], reports[1]);
    EXPECT_GT(reports[0].faults.drops, 0);
    EXPECT_GT(reports[0].faults.dedup_discards, 0);
  }
}

TEST(QueueEquivalence, CalendarAndHeapSimulateIdentically) {
  const DistCase dist{"g2dbc_p23", core::make_g2dbc(23), 23};
  for (const Kernel kernel :
       {Kernel::kLu, Kernel::kCholesky, Kernel::kSyrk}) {
    for (const WorkloadMode mode :
         {WorkloadMode::kMaterialized, WorkloadMode::kImplicit}) {
      const SimReport heap =
          run_kernel(kernel, dist,
                     machine_for(dist.nodes, comm::Algorithm::kBinomialTree,
                                 mode, EventQueueMode::kBinaryHeap));
      const SimReport calendar =
          run_kernel(kernel, dist,
                     machine_for(dist.nodes, comm::Algorithm::kBinomialTree,
                                 mode, EventQueueMode::kCalendar));
      expect_identical_reports(heap, calendar);
    }
  }
}

// ---------------------------------------------------------------------------
// Structural equivalence: the generator's closed forms versus the builder.

void expect_same_structure(const Workload& work, ImplicitWorkload& model) {
  ASSERT_EQ(work.task_count(), model.task_count());
  ASSERT_EQ(static_cast<std::int64_t>(work.instances.size()),
            model.instance_count());
  EXPECT_NEAR(work.total_flops, model.total_flops(),
              1e-9 * (work.total_flops + 1.0));
  for (std::int64_t id = 0; id < work.task_count(); ++id) {
    const SimTask& task = work.tasks[static_cast<std::size_t>(id)];
    const TaskView view = model.task(id);
    ASSERT_EQ(task.type, view.type) << id;
    EXPECT_EQ(task.l, view.l) << id;
    EXPECT_EQ(task.i, view.i) << id;
    EXPECT_EQ(task.j, view.j) << id;
    EXPECT_EQ(task.node, view.node) << id;
    EXPECT_EQ(task.successor, view.successor) << id;
    EXPECT_EQ(task.publishes, view.publishes) << id;
    EXPECT_EQ(task.deps, model.initial_deps(id)) << id;
    if (task.publishes < 0) continue;
    // Consumer groups: same first-occurrence-by-node order, same waiter
    // ordinals in the builder's construction order.
    const Instance& instance =
        work.instances[static_cast<std::size_t>(task.publishes)];
    const auto handle = model.publish(task.publishes, view);
    ASSERT_EQ(static_cast<std::int64_t>(instance.groups.size()),
              ImplicitWorkload::group_count(handle))
        << id;
    EXPECT_EQ(instance.producer_node,
              ImplicitWorkload::producer_node(handle));
    for (std::size_t g = 0; g < instance.groups.size(); ++g) {
      EXPECT_EQ(instance.groups[g].node,
                ImplicitWorkload::group_node(
                    handle, static_cast<std::int64_t>(g)))
          << id;
      std::vector<std::int64_t> waiters;
      ImplicitWorkload::for_each_waiter(
          handle, static_cast<std::int64_t>(g),
          [&](std::int64_t waiter) { waiters.push_back(waiter); });
      EXPECT_EQ(instance.groups[g].waiters, waiters) << id;
    }
    model.release(task.publishes);
  }
}

TEST(ImplicitStructure, MatchesMaterializedBuilderEverywhere) {
  MachineConfig machine;
  machine.nodes = 23;
  for (const DistCase& dist : dist_cases()) {
    machine.nodes = dist.nodes;
    const std::int64_t t = 13;
    {
      const core::PatternDistribution d(dist.pattern, t, false);
      const Workload work = build_lu_workload(t, d, machine);
      ImplicitWorkload model(SimKernel::kLu, t, d, machine);
      SCOPED_TRACE(std::string("lu ") + dist.name);
      expect_same_structure(work, model);
    }
    {
      const core::PatternDistribution d(dist.pattern, t, true);
      const Workload work = build_cholesky_workload(t, d, machine);
      ImplicitWorkload model(SimKernel::kCholesky, t, d, machine);
      SCOPED_TRACE(std::string("cholesky ") + dist.name);
      expect_same_structure(work, model);
    }
    {
      const core::PatternDistribution c(dist.pattern, t, true);
      const core::PatternDistribution a(dist.pattern, t, false);
      const Workload work = build_syrk_workload(t, 5, c, a, machine);
      ImplicitWorkload model(t, 5, c, a, machine);
      SCOPED_TRACE(std::string("syrk ") + dist.name);
      expect_same_structure(work, model);
    }
  }
}

TEST(ImplicitStructure, RejectsForeignNodeIdsLazily) {
  // A 12-node distribution cannot run on a 2-node machine in implicit mode
  // either; the check fires on first decode instead of up front.
  const core::PatternDistribution dist(core::make_2dbc(4, 3), 10, false);
  MachineConfig machine;
  machine.nodes = 2;
  machine.workers_per_node = 4;
  machine.workload_mode = WorkloadMode::kImplicit;
  EXPECT_THROW(simulate_lu(10, dist, machine), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// 64-bit ordinal regression: LU at t = 1900 has ~2.29e9 tasks, past the
// old int32 id space.  The generator must count, decode and link tasks
// across the 2^31 boundary without wrapping.  (Pure arithmetic — nothing
// is simulated or materialized here.)

TEST(Int64Ordinals, LuPastTheInt32Boundary) {
  const std::int64_t t = 1900;
  const core::PatternDistribution dist(core::make_2dbc(2, 2), t, false);
  MachineConfig machine;
  machine.nodes = 4;
  const ImplicitWorkload model(SimKernel::kLu, t, dist, machine);

  // Closed form: t GETRF + t(t-1) TRSM + (t-1)t(2t-1)/6 GEMM.
  const std::int64_t expected =
      t + t * (t - 1) + (t - 1) * t * (2 * t - 1) / 6;
  EXPECT_EQ(model.task_count(), expected);
  EXPECT_GT(model.task_count(), std::int64_t{INT32_MAX});

  // Decodes straddling the boundary stay valid, distinct, and in-range.
  std::set<std::tuple<int, std::int32_t, std::int32_t, std::int32_t>> seen;
  const std::int64_t boundary = std::int64_t{1} << 31;
  for (std::int64_t id = boundary - 4; id <= boundary + 4; ++id) {
    const TaskView view = model.task(id);
    EXPECT_GE(view.l, 0) << id;
    EXPECT_LT(view.l, t) << id;
    EXPECT_GE(view.i, view.l) << id;
    EXPECT_LT(view.i, t) << id;
    EXPECT_GE(view.j, view.l) << id;
    EXPECT_LT(view.j, t) << id;
    if (view.successor >= 0) {
      EXPECT_GT(view.successor, id) << id;
      EXPECT_LT(view.successor, model.task_count()) << id;
      // The successor writes the same tile one iteration later.
      const TaskView next = model.task(view.successor);
      EXPECT_EQ(next.l, view.l + 1) << id;
      EXPECT_EQ(next.i, view.i) << id;
      EXPECT_EQ(next.j, view.j) << id;
    }
    seen.insert({static_cast<int>(view.type), view.l, view.i, view.j});
  }
  EXPECT_EQ(seen.size(), 9u);  // all distinct: the decode is injective
}

TEST(Int64Ordinals, CholeskyCountsStayExactAtHugeGrids) {
  // The acceptance-scale grid: Cholesky P = 4096, t = 2048 has ~1.43e9
  // tasks; t = 8192 would be ~9.2e10.  Counting must not overflow or lose
  // precision (the old code multiplied int32 t * t).
  const core::PatternDistribution dist(core::make_2dbc(64, 64), 8192, true);
  MachineConfig machine;
  machine.nodes = 4096;
  const ImplicitWorkload model(SimKernel::kCholesky, 8192, dist, machine);
  const std::int64_t t = 8192;
  std::int64_t expected = 0;
  for (std::int64_t l = 0; l < t; ++l) {
    const std::int64_t k = t - 1 - l;
    expected += 1 + 2 * k + k * (k - 1) / 2;
  }
  EXPECT_EQ(model.task_count(), expected);
  EXPECT_GT(model.task_count(), std::int64_t{90'000'000'000});
}

}  // namespace
}  // namespace anyblock::sim
