// Large-P asymptotics: at P in {1024, 2048, 4096} the distribution
// families must track their closed-form costs — 2*sqrt(P) for (G-)2DBC on
// LU, sqrt(2P) for SBC and sqrt(3P/2) for GCR&M on the symmetric kernels —
// and the implicit simulator must actually run at these node counts with
// per-node communication volumes matching the same forms.  This is the
// paper's Fig. 4/Fig. 7 regime, far past the materialized engine's comfort
// zone.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/pattern_search.hpp"
#include "core/sbc.hpp"
#include "sim/engine.hpp"

namespace anyblock::sim {
namespace {

constexpr std::int64_t kNodeCounts[] = {1024, 2048, 4096};

TEST(LargeP, G2dbcLuCostTracksTwoSqrtP) {
  for (const std::int64_t P : kNodeCounts) {
    const core::Pattern pattern = core::make_g2dbc(P);
    const double cost = core::lu_cost(pattern);
    // Lemma 2: between the square-grid optimum and the G-2DBC bound.
    EXPECT_GE(cost, core::lu_cost_reference(P) * (1.0 - 1e-9)) << P;
    EXPECT_LE(cost, core::g2dbc_cost_bound(P) * (1.0 + 1e-9)) << P;
  }
}

TEST(LargeP, SbcCholeskyCostTracksSqrtTwoP) {
  for (const std::int64_t P : kNodeCounts) {
    // None of these P are exactly SBC-feasible; take the paper's fallback
    // (largest feasible P' <= P) and check against its own closed form.
    const core::SbcParams params = core::best_sbc_at_most(P);
    EXPECT_GT(params.P, P * 9 / 10) << P;  // the family is dense enough
    const double cost = core::cholesky_cost(core::make_sbc(params));
    EXPECT_NEAR(cost, core::sbc_cost_reference(params.P),
                0.05 * core::sbc_cost_reference(params.P))
        << P;
  }
}

TEST(LargeP, GcrmCholeskyCostTracksSqrtThreeHalvesP) {
  // A thin search (few sizes, few seeds) lands within ~25% of the
  // sqrt(3P/2) limit — and never below it; the paper's full 100-seed
  // protocol tightens the gap but is a bench-scale run.
  for (const std::int64_t P : kNodeCounts) {
    core::GcrmSearchOptions options;
    options.seeds = 2;
    options.max_r_factor = 2.5;
    const core::GcrmSearchResult search = core::gcrm_search(P, options);
    ASSERT_TRUE(search.found) << P;
    const double limit = core::gcrm_cost_limit(P);
    EXPECT_GE(search.best_cost, limit * (1.0 - 1e-9)) << P;
    EXPECT_LE(search.best_cost, limit * 1.25) << P;
  }
}

TEST(LargeP, ImplicitSimulationMatchesExactVolumesAtP1024) {
  // End to end at P = 1024: the implicit engine completes, sends exactly
  // the owner-computes volume, and the per-node volume sits within edge
  // effects of the closed form T(G) * t(t+1)/2 / P.
  const std::int64_t P = 1024;
  const std::int64_t t = 128;
  const core::SbcParams params = core::best_sbc_at_most(P);
  const core::Pattern pattern = core::make_sbc(params);
  const core::PatternDistribution dist(pattern, t, true);
  MachineConfig machine;
  machine.nodes = params.P;
  machine.workers_per_node = 2;
  machine.workload_mode = WorkloadMode::kImplicit;
  const SimReport report = simulate_cholesky(t, dist, machine);
  EXPECT_GT(report.makespan_seconds, 0.0);
  EXPECT_EQ(report.messages, core::exact_cholesky_volume(pattern, t));

  const double per_node = static_cast<double>(report.messages) /
                          static_cast<double>(params.P);
  const double z_bar = core::cholesky_cost(pattern);
  const double predicted = static_cast<double>(t) *
                           static_cast<double>(t + 1) / 2.0 * (z_bar - 1.0) /
                           static_cast<double>(params.P);
  // Eq. 2 ignores domain shrinking in the last iterations; 15% covers it
  // at t = 128.
  EXPECT_NEAR(per_node, predicted, 0.15 * predicted);
}

TEST(LargeP, ImplicitLuRunsAtP4096) {
  // The acceptance-criterion shape in miniature: G-2DBC on 4096 nodes,
  // implicit mode, moderate grid.  The materialized engine would build
  // ~11M tasks here; implicit keeps only the frontier.
  const std::int64_t P = 4096;
  const std::int64_t t = 160;
  const core::Pattern pattern = core::make_g2dbc(P);
  const core::PatternDistribution dist(pattern, t, false);
  MachineConfig machine;
  machine.nodes = P;
  machine.workers_per_node = 2;
  machine.workload_mode = WorkloadMode::kImplicit;
  const SimReport report = simulate_lu(t, dist, machine);
  EXPECT_GT(report.makespan_seconds, 0.0);
  EXPECT_EQ(report.messages, core::exact_lu_volume(pattern, t));
  EXPECT_LT(report.frontier_peak, report.tasks);

  const double per_node = static_cast<double>(report.messages) /
                          static_cast<double>(P);
  const double predicted = core::predicted_lu_volume(pattern, t) /
                           static_cast<double>(P);
  EXPECT_NEAR(per_node, predicted, 0.20 * predicted);
}

}  // namespace
}  // namespace anyblock::sim
