#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "core/pattern_search.hpp"
#include "core/sbc.hpp"

namespace anyblock::sim {
namespace {

MachineConfig test_machine(std::int64_t nodes, int workers = 4) {
  MachineConfig machine;
  machine.nodes = nodes;
  machine.workers_per_node = workers;
  machine.tile_size = 500;
  return machine;
}

core::PatternDistribution dist_for(const core::Pattern& pattern,
                                   std::int64_t t, bool symmetric) {
  return core::PatternDistribution(pattern, t, symmetric);
}

TEST(SimEngine, SingleWorkerRunsSerially) {
  // One node, one worker: makespan is exactly the sum of task durations.
  const MachineConfig machine = test_machine(1, 1);
  const auto dist = dist_for(core::make_2dbc(1, 1), 8, false);
  const Workload work = build_lu_workload(8, dist, machine);
  double serial = 0.0;
  for (const auto& task : work.tasks) serial += machine.task_seconds(task.type);
  const SimReport report = simulate(work, machine);
  EXPECT_NEAR(report.makespan_seconds, serial, serial * 1e-12);
  EXPECT_EQ(report.messages, 0);
  EXPECT_NEAR(report.efficiency(machine), 1.0, 1e-9);
}

TEST(SimEngine, MoreWorkersNeverSlower) {
  const auto dist = dist_for(core::make_2dbc(1, 1), 12, false);
  double previous = 1e300;
  for (const int workers : {1, 2, 4, 8}) {
    const MachineConfig machine = test_machine(1, workers);
    const SimReport report = simulate_lu(12, dist, machine);
    EXPECT_LE(report.makespan_seconds, previous * (1 + 1e-12));
    previous = report.makespan_seconds;
  }
}

TEST(SimEngine, CriticalPathLowerBoundHolds) {
  // Even with unlimited workers, LU cannot beat the panel critical path:
  // t GETRFs + (t-1) TRSM + (t-1) GEMM alternations.
  const MachineConfig machine = test_machine(1, 1000);
  const std::int64_t t = 10;
  const auto dist = dist_for(core::make_2dbc(1, 1), t, false);
  const SimReport report = simulate_lu(t, dist, machine);
  const double path =
      static_cast<double>(t) * machine.task_seconds(TaskType::kGetrf) +
      static_cast<double>(t - 1) * (machine.task_seconds(TaskType::kTrsm) +
                                    machine.task_seconds(TaskType::kGemm));
  EXPECT_GE(report.makespan_seconds, path * (1 - 1e-9));
}

TEST(SimEngine, DeterministicAcrossRuns) {
  const auto dist = dist_for(core::make_2dbc(2, 3), 18, false);
  const MachineConfig machine = test_machine(6);
  const SimReport a = simulate_lu(18, dist, machine);
  const SimReport b = simulate_lu(18, dist, machine);
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(SimEngine, MessagesMatchWorkload) {
  const auto dist = dist_for(core::make_2dbc(2, 3), 15, false);
  const MachineConfig machine = test_machine(6);
  const Workload work = build_lu_workload(15, dist, machine);
  const std::int64_t expected = work.message_count();
  const SimReport report = simulate(work, machine);
  EXPECT_EQ(report.messages, expected);
  std::int64_t per_node_total = 0;
  for (const auto& node : report.per_node)
    per_node_total += node.messages_sent;
  EXPECT_EQ(per_node_total, expected);
}

TEST(SimEngine, SlowNetworkHurts) {
  const auto dist = dist_for(core::make_2dbc(2, 3), 15, false);
  MachineConfig fast = test_machine(6);
  MachineConfig slow = test_machine(6);
  slow.link_bandwidth_gbps = 0.05;
  const double fast_time = simulate_lu(15, dist, fast).makespan_seconds;
  const double slow_time = simulate_lu(15, dist, slow).makespan_seconds;
  EXPECT_GT(slow_time, fast_time * 1.5);
}

TEST(SimEngine, ThroughputBelowMachinePeak) {
  const auto dist = dist_for(core::make_2dbc(2, 2), 16, false);
  const MachineConfig machine = test_machine(4);
  const SimReport report = simulate_lu(16, dist, machine);
  EXPECT_GT(report.total_gflops(), 0.0);
  EXPECT_LE(report.total_gflops(), machine.peak_gflops() * (1 + 1e-9));
  EXPECT_LE(report.efficiency(machine), 1.0 + 1e-9);
}

TEST(SimEngine, HeadlineLuComparisonP23) {
  // Fig. 5's qualitative claim, reproduced in miniature: with 23 nodes,
  // G-2DBC (using all 23) out-performs the forced 23x1 2DBC grid.
  const std::int64_t t = 46;
  const MachineConfig machine = test_machine(23, 4);
  const double g2dbc =
      simulate_lu(t, dist_for(core::make_g2dbc(23), t, false), machine)
          .total_gflops();
  const double bc23x1 =
      simulate_lu(t, dist_for(core::make_2dbc(23, 1), t, false), machine)
          .total_gflops();
  EXPECT_GT(g2dbc, bc23x1);
}

TEST(SimEngine, CholeskySbcBeatsSquare2dbcPerNode) {
  // SC'22 claim inherited by the paper: SBC (21 nodes) reaches higher
  // per-node throughput than the 5x5 2DBC (25 nodes) on Cholesky.
  const std::int64_t t = 45;
  const MachineConfig m21 = test_machine(21, 4);
  const MachineConfig m25 = test_machine(25, 4);
  const SimReport sbc =
      simulate_cholesky(t, dist_for(core::make_sbc(21), t, true), m21);
  const SimReport bc =
      simulate_cholesky(t, dist_for(core::make_2dbc(5, 5), t, true), m25);
  EXPECT_GT(sbc.per_node_gflops(), bc.per_node_gflops());
}

TEST(SimEngine, CholeskyWorkloadRunsWithGcrmPattern) {
  core::GcrmSearchOptions options;
  options.seeds = 5;
  const core::GcrmSearchResult search = core::gcrm_search(23, options);
  ASSERT_TRUE(search.found);
  const std::int64_t t = 30;
  const MachineConfig machine = test_machine(23, 4);
  const SimReport report =
      simulate_cholesky(t, dist_for(search.best, t, true), machine);
  EXPECT_GT(report.total_gflops(), 0.0);
  EXPECT_EQ(report.tasks,
            build_cholesky_workload(t, dist_for(search.best, t, true), machine)
                .task_count());
}

TEST(SimEngine, RejectsForeignNodeIds) {
  // A distribution naming node 5 cannot run on a 2-node machine.
  const auto dist = dist_for(core::make_2dbc(2, 3), 10, false);
  const MachineConfig machine = test_machine(2);
  EXPECT_THROW(simulate_lu(10, dist, machine), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::sim
