// Property tests for the calendar event queue: against the binary-heap
// oracle it must pop *exactly* the same event sequence — same times, same
// sequence numbers, same payloads — for adversarial time distributions
// (uniform, bursty ties, exponential tails, far-future retransmit
// backoffs), interleaved with pops, regardless of how the bucket ring
// resizes underneath.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"

namespace anyblock::sim {
namespace {

Event make_event(double time, std::uint64_t sequence,
                 Event::Kind kind = Event::Kind::kTaskFinish) {
  Event event;
  event.time = time;
  event.kind = kind;
  event.a = static_cast<std::int64_t>(sequence) * 7 + 1;
  event.b = static_cast<std::int32_t>(sequence % 5);
  event.c = static_cast<std::int32_t>(sequence % 3);
  event.sequence = sequence;
  return event;
}

void expect_same_event(const Event& x, const Event& y) {
  EXPECT_EQ(x.time, y.time);
  EXPECT_EQ(x.sequence, y.sequence);
  EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
  EXPECT_EQ(x.a, y.a);
  EXPECT_EQ(x.b, y.b);
  EXPECT_EQ(x.c, y.c);
}

/// Feeds the same stream to both queues with an interleaved pop pattern
/// and checks the popped sequences agree event for event.
void check_against_oracle(const std::vector<Event>& stream,
                          double pop_probability, std::uint64_t seed) {
  CalendarQueue calendar;
  BinaryHeapEventQueue heap;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (const Event& event : stream) {
    calendar.push(event);
    heap.push(event);
    while (!heap.empty() && coin(rng) < pop_probability) {
      ASSERT_FALSE(calendar.empty());
      expect_same_event(calendar.pop(), heap.pop());
    }
  }
  while (!heap.empty()) {
    ASSERT_FALSE(calendar.empty());
    expect_same_event(calendar.pop(), heap.pop());
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.size(), 0u);
}

TEST(CalendarQueue, UniformTimesMatchTheHeapOracle) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> uniform(0.0, 100.0);
  std::vector<Event> stream;
  for (std::uint64_t s = 0; s < 5000; ++s)
    stream.push_back(make_event(uniform(rng), s));
  check_against_oracle(stream, 0.3, 11);
  check_against_oracle(stream, 0.9, 12);
}

TEST(CalendarQueue, SimultaneousTimestampsPopInSequenceOrder) {
  // Heavy ties: only a handful of distinct times.  Order must fall back to
  // the push sequence exactly (the determinism the equivalence suite
  // depends on).
  std::mt19937_64 rng(2);
  std::uniform_int_distribution<int> pick(0, 6);
  std::vector<Event> stream;
  for (std::uint64_t s = 0; s < 4000; ++s)
    stream.push_back(make_event(static_cast<double>(pick(rng)), s));
  check_against_oracle(stream, 0.2, 21);

  // All-identical times, including time zero.
  std::vector<Event> zeros;
  for (std::uint64_t s = 0; s < 500; ++s) zeros.push_back(make_event(0.0, s));
  check_against_oracle(zeros, 0.5, 22);
}

TEST(CalendarQueue, RetransmitBackoffTailsStaySorted) {
  // The DES pushes mostly near-now events plus rare exponentially backed
  // off retransmissions — a long tail many bucket-years away.  Mix kinds
  // so payload propagation is covered too.
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<Event> stream;
  double now = 0.0;
  for (std::uint64_t s = 0; s < 6000; ++s) {
    now += uniform(rng) * 1e-3;
    if (s % 97 == 0) {
      const double backoff = 0.2 * std::pow(2.0, static_cast<double>(s % 13));
      stream.push_back(
          make_event(now + backoff, s, Event::Kind::kRetransmit));
    } else if (s % 3 == 0) {
      stream.push_back(make_event(now + 1e-5, s, Event::Kind::kArrival));
    } else {
      stream.push_back(make_event(now + 1e-4, s));
    }
  }
  check_against_oracle(stream, 0.4, 31);
}

TEST(CalendarQueue, MonotoneDrainLikeTheSimulatorMainLoop) {
  // Push-pop pattern of a real DES: pop the earliest event, push a few
  // events slightly in the future, repeat.  Exercises the sweep cursor
  // advancing through years without ever scanning behind itself.
  CalendarQueue calendar;
  BinaryHeapEventQueue heap;
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> jitter(0.0, 2.0);
  std::uint64_t sequence = 0;
  for (int i = 0; i < 50; ++i) {
    const Event seedling = make_event(jitter(rng), sequence++);
    calendar.push(seedling);
    heap.push(seedling);
  }
  std::int64_t budget = 20000;
  while (!heap.empty()) {
    ASSERT_FALSE(calendar.empty());
    const Event a = calendar.pop();
    const Event b = heap.pop();
    expect_same_event(a, b);
    if (--budget > 0) {
      const int children = static_cast<int>(rng() % 3);
      for (int c = 0; c < children; ++c) {
        const Event next = make_event(a.time + jitter(rng), sequence++);
        calendar.push(next);
        heap.push(next);
      }
    }
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(CalendarQueue, GrowsAndShrinksWhileStayingCorrect) {
  // Size swings force both directions of the resize logic.
  CalendarQueue calendar;
  BinaryHeapEventQueue heap;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> uniform(0.0, 10.0);
  std::uint64_t sequence = 0;
  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 3000; ++i) {
      const Event event = make_event(uniform(rng) + wave * 10.0, sequence++);
      calendar.push(event);
      heap.push(event);
    }
    for (int i = 0; i < 2900; ++i) {
      ASSERT_FALSE(calendar.empty());
      expect_same_event(calendar.pop(), heap.pop());
    }
  }
  while (!heap.empty()) expect_same_event(calendar.pop(), heap.pop());
  EXPECT_GT(calendar.resizes(), 0);
  EXPECT_GE(calendar.bucket_count(), 16u);
  EXPECT_GT(calendar.bucket_width(), 0.0);
}

TEST(CalendarQueue, DeterministicAcrossIdenticalRuns) {
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<Event> stream;
  for (std::uint64_t s = 0; s < 2000; ++s)
    stream.push_back(make_event(uniform(rng), s));

  std::vector<std::uint64_t> first;
  std::vector<std::uint64_t> second;
  for (int run = 0; run < 2; ++run) {
    CalendarQueue queue;
    for (const Event& event : stream) queue.push(event);
    auto& out = run == 0 ? first : second;
    while (!queue.empty()) out.push_back(queue.pop().sequence);
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace anyblock::sim
