// Tests for the simulator's collective models (the counterparts of
// comm::Multicast): per-algorithm message counts follow the closed forms
// of core/cost, every workload completes under every algorithm, results
// are deterministic, and the forwarding collectives are never slower than
// serial point-to-point where one sender feeds many receivers.
#include <gtest/gtest.h>

#include "comm/config.hpp"
#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "sim/engine.hpp"

namespace anyblock::sim {
namespace {

MachineConfig machine_for(std::int64_t nodes, comm::Algorithm algorithm,
                          std::int64_t chunks = 4) {
  MachineConfig machine;
  machine.nodes = nodes;
  machine.workers_per_node = 4;
  machine.collective.algorithm = algorithm;
  machine.collective.chain_chunks = chunks;
  return machine;
}

TEST(SimCollectives, TreeSendsTheSameMessageCountAsP2p) {
  // The tree changes *who* sends, not how many point-to-point transfers
  // happen: still one per (tile, destination) pair.
  const core::PatternDistribution dist(core::make_2dbc(2, 3), 18, false);
  const SimReport p2p =
      simulate_lu(18, dist, machine_for(6, comm::Algorithm::kEagerP2P));
  const SimReport tree =
      simulate_lu(18, dist, machine_for(6, comm::Algorithm::kBinomialTree));
  EXPECT_EQ(p2p.messages, tree.messages);
  EXPECT_EQ(p2p.tasks, tree.tasks);
}

TEST(SimCollectives, MessageCountsMatchTheClosedFormPerAlgorithm) {
  const std::int64_t t = 18;
  const core::PatternDistribution dist(core::make_g2dbc(7), t, false);
  for (const comm::Algorithm algorithm :
       {comm::Algorithm::kEagerP2P, comm::Algorithm::kBinomialTree,
        comm::Algorithm::kPipelinedChain}) {
    const MachineConfig machine = machine_for(7, algorithm, 3);
    const SimReport report = simulate_lu(t, dist, machine);
    EXPECT_EQ(report.messages,
              core::exact_lu_messages(dist, t, machine.collective))
        << comm::algorithm_name(algorithm);
  }
}

TEST(SimCollectives, CompletesOnEveryWorkload) {
  for (const comm::Algorithm algorithm :
       {comm::Algorithm::kBinomialTree, comm::Algorithm::kPipelinedChain}) {
    for (const auto& pattern : {core::make_2dbc(23, 1), core::make_g2dbc(23),
                                core::make_2dbc(5, 4)}) {
      const std::int64_t t = 23;
      const core::PatternDistribution dist(pattern, t, false);
      const SimReport report = simulate_lu(
          t, dist, machine_for(pattern.num_nodes(), algorithm));
      EXPECT_GT(report.makespan_seconds, 0.0);
      EXPECT_GT(report.total_gflops(), 0.0);
    }
  }
}

TEST(SimCollectives, HelpsTheWideBroadcastPattern) {
  // 23x1: each iteration one node broadcasts its row tiles to 22 others.
  // Serializing 22 full-tile sends through one NIC is exactly what the
  // forwarding collectives fix.
  const std::int64_t t = 46;
  const core::PatternDistribution dist(core::make_2dbc(23, 1), t, false);
  const double p2p =
      simulate_lu(t, dist, machine_for(23, comm::Algorithm::kEagerP2P))
          .makespan_seconds;
  const double tree =
      simulate_lu(t, dist, machine_for(23, comm::Algorithm::kBinomialTree))
          .makespan_seconds;
  const double chain =
      simulate_lu(t, dist, machine_for(23, comm::Algorithm::kPipelinedChain))
          .makespan_seconds;
  EXPECT_LT(tree, p2p);
  EXPECT_LT(chain, p2p);
}

TEST(SimCollectives, DeterministicToo) {
  const core::PatternDistribution dist(core::make_g2dbc(10), 20, false);
  for (const comm::Algorithm algorithm :
       {comm::Algorithm::kBinomialTree, comm::Algorithm::kPipelinedChain}) {
    const SimReport a = simulate_lu(20, dist, machine_for(10, algorithm));
    const SimReport b = simulate_lu(20, dist, machine_for(10, algorithm));
    EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  }
}

TEST(SimCollectives, CholeskyWorksToo) {
  const std::int64_t t = 18;
  const core::PatternDistribution dist(core::make_2dbc(3, 3), t, true);
  const SimReport p2p =
      simulate_cholesky(t, dist, machine_for(9, comm::Algorithm::kEagerP2P));
  const SimReport tree = simulate_cholesky(
      t, dist, machine_for(9, comm::Algorithm::kBinomialTree));
  const MachineConfig chain_machine =
      machine_for(9, comm::Algorithm::kPipelinedChain, 5);
  const SimReport chain = simulate_cholesky(t, dist, chain_machine);
  EXPECT_EQ(p2p.messages, tree.messages);
  EXPECT_EQ(chain.messages, core::exact_cholesky_messages(
                                dist, t, chain_machine.collective));
  EXPECT_GT(tree.total_gflops(), 0.0);
  EXPECT_GT(chain.total_gflops(), 0.0);
}

TEST(SimCollectives, ChainChunkCountScalesMessagesNotBytes) {
  const std::int64_t t = 18;
  const core::PatternDistribution dist(core::make_2dbc(2, 3), t, false);
  const SimReport two =
      simulate_lu(t, dist, machine_for(6, comm::Algorithm::kPipelinedChain, 2));
  const SimReport five =
      simulate_lu(t, dist, machine_for(6, comm::Algorithm::kPipelinedChain, 5));
  const SimReport p2p =
      simulate_lu(t, dist, machine_for(6, comm::Algorithm::kEagerP2P));
  EXPECT_EQ(two.messages, p2p.messages * 2);
  EXPECT_EQ(five.messages, p2p.messages * 5);
  // Chunking splits tiles; the total bytes on the wire stay the volume.
  double bytes_two = 0.0;
  double bytes_p2p = 0.0;
  for (const auto& node : two.per_node) bytes_two += node.bytes_sent;
  for (const auto& node : p2p.per_node) bytes_p2p += node.bytes_sent;
  EXPECT_NEAR(bytes_two, bytes_p2p, 1e-6 * bytes_p2p);
}

}  // namespace
}  // namespace anyblock::sim
