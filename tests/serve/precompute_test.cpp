#include "serve/precompute.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/task_engine.hpp"
#include "store/winners_table.hpp"

namespace anyblock::serve {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

PrecomputeOptions fast_options(const std::string& table_path) {
  PrecomputeOptions options;
  options.min_p = 2;
  options.max_p = 8;
  options.search.seeds = 5;
  options.table_path = table_path;
  return options;
}

TEST(Precompute, FreshSweepWritesEveryFeasibleP) {
  const std::string path = temp_path("precompute_fresh.tsv");
  std::remove(path.c_str());
  runtime::TaskEngine engine(2);
  const PrecomputeReport report =
      precompute_winners(fast_options(path), engine);
  EXPECT_EQ(report.resumed, 0);
  EXPECT_EQ(report.swept + report.infeasible, 7);  // P in [2, 8]
  EXPECT_EQ(report.table_rows, static_cast<std::size_t>(report.swept));

  store::WinnersTable table;
  ASSERT_TRUE(table.load_file(path)) << table.error();
  EXPECT_EQ(table.size(), report.table_rows);
  std::remove(path.c_str());
}

TEST(Precompute, ResumeKeepsRowsAndSweepsOnlyTheGap) {
  const std::string path = temp_path("precompute_resume.tsv");
  std::remove(path.c_str());
  runtime::TaskEngine engine(2);
  const PrecomputeReport first =
      precompute_winners(fast_options(path), engine);
  ASSERT_GT(first.swept, 0);

  // Same range again: everything resumes, nothing is swept.
  PrecomputeOptions again = fast_options(path);
  again.resume = true;
  std::vector<std::int64_t> swept_ps;
  const PrecomputeReport second = precompute_winners(
      again, engine,
      [&](const store::WinnerRow& row) { swept_ps.push_back(row.P); });
  EXPECT_EQ(second.swept, 0);
  EXPECT_TRUE(swept_ps.empty());
  EXPECT_EQ(second.resumed, first.swept);
  EXPECT_EQ(second.table_rows, first.table_rows);

  // A larger --max-p extends: old rows kept, only the gap swept.
  PrecomputeOptions wider = fast_options(path);
  wider.resume = true;
  wider.max_p = 12;
  const PrecomputeReport third = precompute_winners(
      wider, engine,
      [&](const store::WinnerRow& row) { swept_ps.push_back(row.P); });
  EXPECT_EQ(third.resumed, first.swept);
  for (const std::int64_t P : swept_ps) EXPECT_GT(P, 8);
  EXPECT_EQ(third.table_rows,
            static_cast<std::size_t>(first.swept + third.swept));
  std::remove(path.c_str());
}

TEST(Precompute, ResumeRefusesDifferentSearchOptions) {
  const std::string path = temp_path("precompute_mix.tsv");
  std::remove(path.c_str());
  runtime::TaskEngine engine(2);
  precompute_winners(fast_options(path), engine);

  PrecomputeOptions mixed = fast_options(path);
  mixed.resume = true;
  mixed.search.seeds = 7;  // different sweep: rows would not be comparable
  EXPECT_THROW(precompute_winners(mixed, engine), PrecomputeError);

  // The refused run must not have touched the table.
  store::WinnersTable table;
  EXPECT_TRUE(table.load_file(path)) << table.error();
  std::remove(path.c_str());
}

TEST(Precompute, ResumeRefusesDamagedTable) {
  const std::string path = temp_path("precompute_damaged.tsv");
  std::remove(path.c_str());
  runtime::TaskEngine engine(2);
  precompute_winners(fast_options(path), engine);

  // A partially-written row (no trailing newline, broken CRC) must refuse,
  // not silently resweep over the damage.
  std::string text = slurp(path);
  spit(path, text.substr(0, text.size() - 9));
  PrecomputeOptions resume = fast_options(path);
  resume.resume = true;
  EXPECT_THROW(precompute_winners(resume, engine), PrecomputeError);
  std::remove(path.c_str());
}

TEST(Precompute, PruneFlagIsNotPartOfResumeIdentity) {
  // Pruning is result-identical, so a pruned run may extend an unpruned
  // table (and vice versa) — only result-changing options are pinned.
  const std::string path = temp_path("precompute_prune_mix.tsv");
  std::remove(path.c_str());
  runtime::TaskEngine engine(2);
  PrecomputeOptions unpruned = fast_options(path);
  unpruned.search.prune = false;
  precompute_winners(unpruned, engine);

  PrecomputeOptions pruned = fast_options(path);
  pruned.resume = true;
  pruned.search.prune = true;
  pruned.max_p = 10;
  const PrecomputeReport report = precompute_winners(pruned, engine);
  EXPECT_GT(report.resumed, 0);
  std::remove(path.c_str());
}

TEST(Precompute, CheckpointsAfterEveryRowByDefault) {
  const std::string path = temp_path("precompute_ckpt.tsv");
  std::remove(path.c_str());
  runtime::TaskEngine engine(2);
  PrecomputeOptions options = fast_options(path);
  ASSERT_EQ(options.checkpoint_every, 1);
  // Every newly swept row must already be on disk when progress fires for
  // the NEXT row — that is the at-most-one-row loss guarantee.
  std::int64_t rows_seen = 0;
  const PrecomputeReport report = precompute_winners(
      options, engine, [&](const store::WinnerRow&) {
        if (rows_seen++ == 0) return;  // first row: nothing on disk yet
        store::WinnersTable table;
        EXPECT_TRUE(table.load_file(path)) << table.error();
        EXPECT_GE(table.size(), static_cast<std::size_t>(rows_seen - 1));
      });
  EXPECT_EQ(report.checkpoints, report.swept);
  std::remove(path.c_str());
}

TEST(Precompute, RejectsInvertedRange) {
  runtime::TaskEngine engine(1);
  PrecomputeOptions options = fast_options(temp_path("precompute_bad.tsv"));
  options.min_p = 10;
  options.max_p = 5;
  EXPECT_THROW(precompute_winners(options, engine), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::serve
