#include "serve/recommend_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/pattern_search.hpp"
#include "core/recommend.hpp"
#include "store/winners_table.hpp"

namespace anyblock::serve {
namespace {

ServiceOptions fast_service() {
  ServiceOptions options;
  options.workers = 2;
  options.recommend.search.seeds = 10;  // keep cold sweeps quick in tests
  return options;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(RecommendService, ServesExactlyWhatRecommendPatternReturns) {
  RecommendService service(fast_service());
  for (const std::int64_t P : {5, 12, 23}) {
    for (const core::Kernel kernel :
         {core::Kernel::kLu, core::Kernel::kCholesky}) {
      SCOPED_TRACE(P);
      const core::Recommendation direct =
          core::recommend_pattern(P, kernel, fast_service().recommend);
      const ServedRecommendation served = service.recommend(P, kernel);
      EXPECT_EQ(served.rec.pattern, direct.pattern);
      EXPECT_EQ(served.rec.scheme, direct.scheme);
      EXPECT_EQ(served.rec.cost, direct.cost);  // bit-exact
      EXPECT_EQ(served.rec.rationale, direct.rationale);
    }
  }
}

TEST(RecommendService, SecondQueryHitsTheStoreFast) {
  RecommendService service(fast_service());
  const ServedRecommendation cold =
      service.recommend(23, core::Kernel::kCholesky);
  EXPECT_EQ(cold.source, Source::kSearch);

  const ServedRecommendation warm =
      service.recommend(23, core::Kernel::kCholesky);
  EXPECT_EQ(warm.source, Source::kStore);
  EXPECT_EQ(warm.rec.pattern, cold.rec.pattern);
  EXPECT_EQ(warm.rec.cost, cold.rec.cost);
  // The acceptance criterion: a warm-cache lookup answers in < 1 ms.
  EXPECT_LT(warm.seconds, 1e-3);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 2);
  EXPECT_EQ(stats.store_hits, 1);
  EXPECT_EQ(stats.sweeps, 1);
}

TEST(RecommendService, LuQueriesAreMemoizedToo) {
  RecommendService service(fast_service());
  EXPECT_EQ(service.recommend(23, core::Kernel::kLu).source, Source::kSearch);
  EXPECT_EQ(service.recommend(23, core::Kernel::kLu).source, Source::kStore);
  // Symmetric and LU entries are distinct keys for the same P.
  EXPECT_EQ(service.recommend(23, core::Kernel::kCholesky).source,
            Source::kSearch);
  EXPECT_EQ(service.stats().lu_builds, 1);
}

TEST(RecommendService, SyrkSharesTheSymmetricEntry) {
  // Cholesky and SYRK use the same z-bar metric: one cached entry serves
  // both kernels.
  RecommendService service(fast_service());
  (void)service.recommend(23, core::Kernel::kCholesky);
  EXPECT_EQ(service.recommend(23, core::Kernel::kSyrk).source,
            Source::kStore);
}

TEST(RecommendService, BatchAnswersInInputOrderAndMemoizesDuplicates) {
  RecommendService service(fast_service());
  const std::vector<std::int64_t> nodes = {7, 23, 7, 23};
  const std::vector<ServedRecommendation> served =
      service.recommend_batch(nodes, core::Kernel::kCholesky);
  ASSERT_EQ(served.size(), 4u);
  EXPECT_EQ(served[0].source, Source::kSearch);
  EXPECT_EQ(served[1].source, Source::kSearch);
  EXPECT_EQ(served[2].source, Source::kStore);
  EXPECT_EQ(served[3].source, Source::kStore);
  EXPECT_EQ(served[0].rec.pattern, served[2].rec.pattern);
  EXPECT_EQ(served[1].rec.pattern, served[3].rec.pattern);
}

TEST(RecommendService, PersistentStoreSurvivesRestart) {
  const std::string path = temp_path("service_store.db");
  std::remove(path.c_str());
  ServiceOptions options = fast_service();
  options.store_path = path;
  {
    RecommendService first(options);
    EXPECT_EQ(first.recommend(23, core::Kernel::kCholesky).source,
              Source::kSearch);
  }
  RecommendService second(options);
  const ServedRecommendation warm =
      second.recommend(23, core::Kernel::kCholesky);
  EXPECT_EQ(warm.source, Source::kStore);
  EXPECT_LT(warm.seconds, 1e-3);
  std::remove(path.c_str());
}

TEST(RecommendService, WinnersTableAnswersWithoutASweep) {
  // Build a table from a real sweep, then serve from a fresh service: the
  // answer must come from the table (one gcrm_build, no sweep) and match
  // the direct recommendation bit-for-bit.
  const std::string path = temp_path("service_table.tsv");
  const core::GcrmSearchOptions search = fast_service().recommend.search;
  const core::GcrmSearchResult swept = core::gcrm_search(23, search);
  ASSERT_TRUE(swept.found);
  store::WinnersTable table;
  table.set_options(search);
  table.add({23, swept.best_r, swept.best_seed, swept.best_cost});
  ASSERT_TRUE(table.save_file(path));

  ServiceOptions options = fast_service();
  options.table_path = path;
  RecommendService service(options);
  ASSERT_TRUE(service.table_usable());
  const ServedRecommendation served =
      service.recommend(23, core::Kernel::kCholesky);
  EXPECT_EQ(served.source, Source::kTable);
  const core::Recommendation direct = core::recommend_pattern(
      23, core::Kernel::kCholesky, fast_service().recommend);
  EXPECT_EQ(served.rec.pattern, direct.pattern);
  EXPECT_EQ(served.rec.cost, direct.cost);
  EXPECT_EQ(service.stats().sweeps, 0);

  // Once served, the store memoizes it: the table is not consulted again.
  EXPECT_EQ(service.recommend(23, core::Kernel::kCholesky).source,
            Source::kStore);
  std::remove(path.c_str());
}

TEST(RecommendService, MismatchedTableOptionsFallBackToSweep) {
  // A table swept under a different budget must never answer.
  const std::string path = temp_path("service_table_mismatch.tsv");
  store::WinnersTable table;
  core::GcrmSearchOptions other = fast_service().recommend.search;
  other.seeds = 99;
  table.set_options(other);
  table.add({23, 24, 1, 6.0});
  ASSERT_TRUE(table.save_file(path));

  ServiceOptions options = fast_service();
  options.table_path = path;
  RecommendService service(options);
  EXPECT_FALSE(service.table_usable());
  EXPECT_EQ(service.recommend(23, core::Kernel::kCholesky).source,
            Source::kSearch);
  std::remove(path.c_str());
}

TEST(RecommendService, MetricRowsExposeCountersAndLatency) {
  RecommendService service(fast_service());
  (void)service.recommend(23, core::Kernel::kCholesky);
  (void)service.recommend(23, core::Kernel::kCholesky);
  bool saw_queries = false;
  bool saw_warm = false;
  bool saw_store_hits = false;
  for (const auto& [name, value] : service.metric_rows()) {
    if (name == "serve_queries") {
      saw_queries = true;
      EXPECT_DOUBLE_EQ(value, 2.0);
    }
    if (name == "serve_warm_count") {
      saw_warm = true;
      EXPECT_DOUBLE_EQ(value, 1.0);
    }
    if (name == "store_hits") {
      saw_store_hits = true;
      EXPECT_DOUBLE_EQ(value, 1.0);
    }
  }
  EXPECT_TRUE(saw_queries);
  EXPECT_TRUE(saw_warm);
  EXPECT_TRUE(saw_store_hits);
}

TEST(RecommendService, ConcurrentQueriesAreSafeAndConsistent) {
  // The TSan target: many threads hammering the same service — some hitting
  // the warm path, some racing on the cold path — must neither race nor
  // disagree.  One thread keeps writing fresh P values while readers loop
  // over a fixed set.
  RecommendService service(fast_service());
  const core::Recommendation expected = core::recommend_pattern(
      7, core::Kernel::kCholesky, fast_service().recommend);

  constexpr int kReaders = 3;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  threads.emplace_back([&service] {
    for (const std::int64_t P : {5, 6, 8, 9, 10})
      (void)service.recommend(P, core::Kernel::kCholesky);
  });
  for (int i = 0; i < kReaders; ++i)
    threads.emplace_back([&service, &expected] {
      for (int round = 0; round < kRounds; ++round) {
        const ServedRecommendation served =
            service.recommend(7, core::Kernel::kCholesky);
        ASSERT_EQ(served.rec.pattern, expected.pattern);
        ASSERT_EQ(served.rec.cost, expected.cost);
      }
    });
  for (auto& t : threads) t.join();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 5 + kReaders * kRounds);
}

TEST(RecommendService, ConcurrentProcessesShareTheManifest) {
  // Cross-"process" story, approximated with two store-backed services on
  // one manifest: the writer's atomic rename means the reader (after
  // reload) sees complete entries, never torn ones.
  const std::string path = temp_path("service_shared.db");
  std::remove(path.c_str());
  ServiceOptions options = fast_service();
  options.store_path = path;
  RecommendService writer(options);
  RecommendService reader(options);

  std::thread writing([&writer] {
    for (const std::int64_t P : {5, 7, 11})
      (void)writer.recommend(P, core::Kernel::kCholesky);
  });
  std::thread reading([&reader] {
    for (int round = 0; round < 20; ++round) {
      ASSERT_TRUE(reader.pattern_store().reload());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  writing.join();
  reading.join();

  ASSERT_TRUE(reader.pattern_store().reload());
  EXPECT_EQ(reader.pattern_store().size(), 3u);
  // Everything the reader sees passed its CRC.
  EXPECT_EQ(reader.pattern_store().stats().evicted_corrupt, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace anyblock::serve
