#include "serve/parallel_search.hpp"

#include <gtest/gtest.h>

#include "core/pattern_search.hpp"
#include "runtime/task_engine.hpp"

namespace anyblock::serve {
namespace {

core::GcrmSearchOptions fast_options() {
  core::GcrmSearchOptions options;
  options.seeds = 10;
  return options;
}

/// The acceptance criterion, verbatim: the parallel sweep must return the
/// SAME pattern at the SAME cost as the sequential gcrm_search — not an
/// equally-good winner, the identical one (including the tie-broken winner
/// coordinates), for any worker count.
TEST(ParallelSearch, BitIdenticalToSequential) {
  for (const std::int64_t P : {2, 7, 13, 23, 31}) {
    SCOPED_TRACE(P);
    const core::GcrmSearchResult sequential =
        core::gcrm_search(P, fast_options());
    for (const int workers : {1, 2, 4, 7}) {
      SCOPED_TRACE(workers);
      runtime::TaskEngine engine(workers);
      const core::GcrmSearchResult parallel =
          parallel_gcrm_search(P, fast_options(), engine);
      ASSERT_EQ(parallel.found, sequential.found);
      if (!sequential.found) continue;
      EXPECT_EQ(parallel.best, sequential.best);
      EXPECT_EQ(parallel.best_cost, sequential.best_cost);  // bit-exact
      EXPECT_EQ(parallel.best_r, sequential.best_r);
      EXPECT_EQ(parallel.best_seed, sequential.best_seed);
    }
  }
}

TEST(ParallelSearch, SamplesMatchSequentialOrderAndContent) {
  // With keep_samples the merged sample list must replay the sequential
  // sweep's canonical (r, then s) order exactly — Fig. 9 analyses consume
  // this ordering.
  core::GcrmSearchOptions options = fast_options();
  options.seeds = 3;
  const core::GcrmSearchResult sequential =
      core::gcrm_search(23, options, true);
  runtime::TaskEngine engine(3);
  const core::GcrmSearchResult parallel =
      parallel_gcrm_search(23, options, engine, true);
  ASSERT_EQ(parallel.samples.size(), sequential.samples.size());
  for (std::size_t i = 0; i < sequential.samples.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(parallel.samples[i].r, sequential.samples[i].r);
    EXPECT_EQ(parallel.samples[i].seed, sequential.samples[i].seed);
    EXPECT_EQ(parallel.samples[i].cost, sequential.samples[i].cost);
    EXPECT_EQ(parallel.samples[i].valid, sequential.samples[i].valid);
    EXPECT_EQ(parallel.samples[i].balanced, sequential.samples[i].balanced);
  }
}

TEST(ParallelSearch, NoSamplesByDefault) {
  runtime::TaskEngine engine(2);
  const core::GcrmSearchResult result =
      parallel_gcrm_search(10, fast_options(), engine);
  EXPECT_TRUE(result.samples.empty());
}

TEST(ParallelSearch, InfeasibleSweepReportsNothing) {
  core::GcrmSearchOptions tight = fast_options();
  tight.max_r_factor = 1.0;  // no feasible r for P = 23
  runtime::TaskEngine engine(2);
  const core::GcrmSearchResult result =
      parallel_gcrm_search(23, tight, engine);
  EXPECT_FALSE(result.found);
}

TEST(ParallelSearch, EngineIsReusableAcrossSweeps) {
  // One engine serving successive queries (the RecommendService pattern):
  // results stay deterministic run over run.
  runtime::TaskEngine engine(2);
  const core::GcrmSearchResult a =
      parallel_gcrm_search(17, fast_options(), engine);
  const core::GcrmSearchResult b =
      parallel_gcrm_search(17, fast_options(), engine);
  ASSERT_TRUE(a.found);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_seed, b.best_seed);
}

TEST(ParallelSearch, InvalidP) {
  runtime::TaskEngine engine(1);
  EXPECT_THROW(parallel_gcrm_search(0, fast_options(), engine),
               std::invalid_argument);
}

TEST(ParallelSearch, PrunedBitIdenticalToUnprunedSequential) {
  // The strongest cross-check in the golden grid: the pruned PARALLEL
  // sweep (races on the shared threshold and all) must reproduce the
  // exhaustive sequential sweep bit for bit, at any worker count.
  core::GcrmSearchOptions unpruned = fast_options();
  unpruned.prune = false;
  core::GcrmSearchOptions pruned = fast_options();
  pruned.prune = true;
  for (const std::int64_t P : {2, 7, 16, 23, 31, 36}) {
    SCOPED_TRACE(P);
    const core::GcrmSearchResult reference = core::gcrm_search(P, unpruned);
    for (const int workers : {1, 3, 7}) {
      SCOPED_TRACE(workers);
      runtime::TaskEngine engine(workers);
      const core::GcrmSearchResult fast =
          parallel_gcrm_search(P, pruned, engine);
      ASSERT_EQ(fast.found, reference.found);
      if (!reference.found) continue;
      EXPECT_EQ(fast.best_r, reference.best_r);
      EXPECT_EQ(fast.best_seed, reference.best_seed);
      EXPECT_EQ(fast.best_cost, reference.best_cost);  // bit-exact
      EXPECT_EQ(fast.best, reference.best);
    }
  }
}

TEST(ParallelSearch, SweepProfileAccountsForEveryAttempt) {
  core::GcrmSearchOptions options = fast_options();
  runtime::TaskEngine engine(3);
  core::GcrmSweepProfile profile;
  const core::GcrmSearchResult result =
      parallel_gcrm_search(23, options, engine, false, &profile);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(profile.searches, 1);
  EXPECT_GT(profile.sizes_feasible, 0);
  EXPECT_EQ(profile.attempts_built + profile.attempts_abandoned +
                profile.attempts_skipped,
            profile.sizes_feasible * options.seeds);
}

}  // namespace
}  // namespace anyblock::serve
